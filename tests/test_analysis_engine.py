"""Engine-level tests for repro-lint: findings, directives, suppression,
baseline round-trip, reporters, and the CLI."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.cli import BASELINE_NAME, check_paths, main
from repro.analysis.engine import (
    Baseline,
    Finding,
    Project,
    SourceModule,
    render_json,
    render_text,
    run_rules,
)


def write(path, source):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


class EchoRule:
    """Test double: emits one pre-baked finding per module."""

    rule_id = "echo"
    description = "emit one finding per module"

    def __init__(self, line=1, message="echoed"):
        self.line = line
        self.message = message

    def check(self, project):
        for mod in project.modules:
            yield Finding(rule=self.rule_id, path=mod.rel, line=self.line,
                          message=self.message, hint="ignore me")


class TestFinding:
    def test_location_and_key(self):
        f = Finding(rule="r", path="src/a.py", line=7, message="m")
        assert f.location == "src/a.py:7"
        assert f.key() == ("r", "src/a.py", "m")

    def test_to_dict_roundtrips_through_json(self):
        f = Finding(rule="r", path="src/a.py", line=7, message="m",
                    severity="warning", hint="h")
        assert json.loads(json.dumps(f.to_dict())) == {
            "rule": "r", "path": "src/a.py", "line": 7,
            "severity": "warning", "message": "m", "hint": "h"}


class TestSourceModule:
    def test_directive_scan(self, tmp_path):
        src = write(tmp_path / "src" / "m.py", """
            # repro: hot-path
            def f():
                # repro: cold-path
                x = 1  # repro: allow[echo, other-rule]
                return x
        """)
        mod = SourceModule.parse(src, tmp_path)
        assert mod.markers == [(2, "hot-path"), (4, "cold-path")]
        assert mod.allows == {5: {"echo", "other-rule"}}

    def test_syntax_error_becomes_finding(self, tmp_path):
        src = write(tmp_path / "src" / "bad.py", "def f(:\n")
        mod = SourceModule.parse(src, tmp_path)
        assert mod.tree is None
        assert mod.syntax_error is not None
        assert mod.syntax_error.rule == "parse-error"
        project = Project(tmp_path, [mod])
        assert [f.rule for f in run_rules(project, [])] == ["parse-error"]

    def test_dotted_name(self, tmp_path):
        src = write(tmp_path / "src" / "repro" / "core" / "__init__.py", "")
        assert SourceModule.parse(src, tmp_path).dotted_name == "repro.core"


class TestSuppression:
    def make(self, tmp_path, source):
        src = write(tmp_path / "src" / "m.py", source)
        mod = SourceModule.parse(src, tmp_path)
        return Project(tmp_path, [mod])

    def test_same_line_allow(self, tmp_path):
        project = self.make(tmp_path, "x = 1  # repro: allow[echo]\n")
        assert run_rules(project, [EchoRule(line=1)]) == []

    def test_comment_line_above_allow(self, tmp_path):
        project = self.make(tmp_path, """
            # repro: allow[echo] -- known debt
            x = 1
        """)
        assert run_rules(project, [EchoRule(line=3)]) == []

    def test_code_line_above_does_not_suppress(self, tmp_path):
        # The directive must be on the finding's line or a *comment* line
        # directly above — a trailing allow on unrelated code is ignored.
        project = self.make(tmp_path, """
            x = 1  # repro: allow[echo]
            y = 2
        """)
        assert len(run_rules(project, [EchoRule(line=3)])) == 1

    def test_wildcard_allow(self, tmp_path):
        project = self.make(tmp_path, "x = 1  # repro: allow[*]\n")
        assert run_rules(project, [EchoRule(line=1)]) == []

    def test_directive_above_decorator_reaches_decorated_def(self, tmp_path):
        # A finding anchored on the `def` line of a decorated function is
        # covered by a directive written where humans write it: above the
        # decorator stack.
        project = self.make(tmp_path, """
            # repro: allow[echo] -- decorated def
            @staticmethod
            @property
            def f():
                return 1
        """)
        assert run_rules(project, [EchoRule(line=5)]) == []

    def test_directive_on_decorator_line_reaches_decorated_def(self, tmp_path):
        project = self.make(tmp_path, """
            @staticmethod  # repro: allow[echo]
            def f():
                return 1
        """)
        assert run_rules(project, [EchoRule(line=3)]) == []

    def test_decorated_def_other_rule_still_reported(self, tmp_path):
        project = self.make(tmp_path, """
            # repro: allow[other]
            @staticmethod
            def f():
                return 1
        """)
        assert len(run_rules(project, [EchoRule(line=4)])) == 1

    def test_code_above_decorator_does_not_suppress(self, tmp_path):
        project = self.make(tmp_path, """
            x = 1  # repro: allow[echo]
            @staticmethod
            def f():
                return 1
        """)
        assert len(run_rules(project, [EchoRule(line=4)])) == 1

    def test_other_rule_allow_does_not_suppress(self, tmp_path):
        project = self.make(tmp_path, "x = 1  # repro: allow[other]\n")
        assert len(run_rules(project, [EchoRule(line=1)])) == 1


class TestBaseline:
    def test_missing_file_is_empty(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == set()

    def test_write_load_split_roundtrip(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        old = Finding(rule="r", path="a.py", line=3, message="legacy")
        Baseline.write(path, [old])
        baseline = Baseline.load(path)
        # Line drift must not un-baseline a finding.
        drifted = Finding(rule="r", path="a.py", line=99, message="legacy")
        fresh = Finding(rule="r", path="a.py", line=4, message="new debt")
        new, baselined = baseline.split([drifted, fresh])
        assert new == [fresh]
        assert baselined == [drifted]


class TestReporters:
    FINDINGS = [Finding(rule="r", path="a.py", line=2, message="boom",
                        hint="do the thing")]

    def test_text_has_anchor_hint_and_summary(self):
        out = render_text(self.FINDINGS, baselined=1, checked=5)
        assert "a.py:2: error[r] boom" in out
        assert "hint: do the thing" in out
        assert "1 finding(s) in 5 file(s) (1 baselined)" in out

    def test_text_clean_summary(self):
        assert "OK: 0 findings in 3 file(s)" == render_text([], checked=3)

    def test_json_schema(self):
        payload = json.loads(render_json(self.FINDINGS, checked=5))
        assert payload["version"] == 1
        assert payload["checked_files"] == 5
        assert payload["findings"][0]["message"] == "boom"


class TestCli:
    def seed_tree(self, tmp_path, body="x = 1\n"):
        write(tmp_path / "src" / "repro" / "net" / "g.py", body)
        return tmp_path

    BAD = "import numpy as np\nrng = np.random.default_rng(3)\n"

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        root = self.seed_tree(tmp_path)
        assert main(["check", "src", "--root", str(root)]) == 0
        assert "OK: 0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        root = self.seed_tree(tmp_path, self.BAD)
        assert main(["check", "src", "--root", str(root)]) == 1
        out = capsys.readouterr().out
        assert "rng-discipline" in out
        assert "g.py:2" in out

    def test_json_format(self, tmp_path, capsys):
        root = self.seed_tree(tmp_path, self.BAD)
        assert main(["check", "src", "--root", str(root),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "rng-discipline"

    def test_update_baseline_then_clean(self, tmp_path, capsys):
        root = self.seed_tree(tmp_path, self.BAD)
        assert main(["check", "src", "--root", str(root),
                     "--update-baseline"]) == 0
        baseline = json.loads((root / BASELINE_NAME).read_text())
        assert len(baseline["findings"]) == 1
        capsys.readouterr()
        # Baselined debt no longer fails the gate...
        assert main(["check", "src", "--root", str(root)]) == 0
        assert "(1 baselined)" in capsys.readouterr().out
        # ...but fresh debt still does.
        write(root / "src" / "repro" / "net" / "h.py", self.BAD)
        assert main(["check", "src", "--root", str(root)]) == 1

    def test_bad_root_exits_two(self, tmp_path):
        assert main(["check", "src", "--root",
                     str(tmp_path / "missing")]) == 2

    def test_rules_subcommand_lists_all_six(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("rng-discipline", "hot-path-purity", "registry-sync",
                        "export-drift", "units-suffix", "paper-eq-refs"):
            assert rule_id in out

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "repro-lint" in capsys.readouterr().out

    def test_check_paths_library_entry(self, tmp_path):
        root = self.seed_tree(tmp_path, self.BAD)
        findings = check_paths(root, [root / "src"])
        assert [f.rule for f in findings] == ["rng-discipline"]
