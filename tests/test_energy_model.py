"""Unit tests for repro.energy.model."""

import pytest

from repro.energy.model import PAPER_ENERGY_MODEL, EnergyModel
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def model():
    return EnergyModel(capacity=1000.0, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


class TestConstruction:
    def test_paper_preset(self):
        assert PAPER_ENERGY_MODEL.capacity == 3e5
        assert PAPER_ENERGY_MODEL.hover_power == 150.0
        assert PAPER_ENERGY_MODEL.travel_power == 100.0
        assert PAPER_ENERGY_MODEL.speed == 10.0

    @pytest.mark.parametrize("field", ["capacity", "hover_power",
                                       "travel_power", "speed"])
    def test_rejects_non_positive(self, field):
        kwargs = dict(capacity=1.0, hover_power=1.0,
                      travel_power=1.0, speed=1.0)
        kwargs[field] = 0.0
        with pytest.raises(InvalidParameterError):
            EnergyModel(**kwargs)

    def test_frozen(self, model):
        with pytest.raises(AttributeError):
            model.capacity = 5.0


class TestConversions:
    def test_travel_cost_per_meter(self, model):
        # eta_t / speed = 100 / 10 = 10 J/m.
        assert model.travel_cost_per_meter == 10.0

    def test_travel_time(self, model):
        assert model.travel_time(100.0) == 10.0

    def test_travel_energy(self, model):
        assert model.travel_energy(50.0) == 500.0

    def test_hover_energy(self, model):
        assert model.hover_energy(2.0) == 300.0

    def test_tour_energy_combines(self, model):
        assert model.tour_energy(travel_distance=50.0, hover_duration=2.0) == 800.0

    def test_zero_distance(self, model):
        assert model.travel_energy(0.0) == 0.0

    def test_negative_distance_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            model.travel_energy(-1.0)

    def test_negative_duration_rejected(self, model):
        with pytest.raises(InvalidParameterError):
            model.hover_energy(-1.0)


class TestBudgetViews:
    def test_max_travel_distance(self, model):
        assert model.max_travel_distance() == 100.0

    def test_max_hover_duration(self, model):
        assert model.max_hover_duration() == pytest.approx(1000.0 / 150.0)

    def test_remaining_hover_time(self, model):
        # 50 m of travel costs 500 J; 500 J left / 150 J/s hover.
        assert model.remaining_hover_time(50.0) == pytest.approx(500.0 / 150.0)

    def test_remaining_hover_time_negative_when_overdrawn(self, model):
        assert model.remaining_hover_time(200.0) < 0

    def test_with_capacity(self, model):
        bigger = model.with_capacity(2000.0)
        assert bigger.capacity == 2000.0
        assert bigger.hover_power == model.hover_power
        assert model.capacity == 1000.0  # original unchanged
