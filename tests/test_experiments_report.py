"""Unit tests for repro.experiments.report and tour_map."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.report import generate_report, load_results_dir, load_sweep_csv
from repro.experiments.runner import SweepResult
from repro.experiments.tables import rows_to_csv
from repro.utils.errors import InvalidParameterError

SVG_NS = "{http://www.w3.org/2000/svg}"


def make_fig5_result():
    from repro.experiments.config import reduced_settings
    from repro.experiments.runner import SweepRow
    rows = []
    for i, v in enumerate((1e4, 2e4, 3e4)):
        for algo, vol, t in (("Algorithm 2", 20.0 + 5 * i, 0.1 * (i + 1)),
                             ("Algorithm 3 (K=2)", 21.0 + 5 * i, 0.3),
                             ("Benchmark", 8.0 + 4 * i, 0.05)):
            rows.append(SweepRow("capacity", v, algo, vol, 0.1, t, 0.0, 2))
    return SweepResult(config=reduced_settings(), rows=rows)


class TestLoadSweepCsv:
    def test_round_trip(self, tmp_path):
        result = make_fig5_result()
        path = tmp_path / "fig5_reduced.csv"
        path.write_text(rows_to_csv(result))
        back = load_sweep_csv(path)
        assert len(back.rows) == len(result.rows)
        assert back.algorithms() == result.algorithms()
        a, b = result.rows[0], back.rows[0]
        assert a.mean_volume_gb == b.mean_volume_gb
        assert a.param_value == b.param_value

    def test_missing_file(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_sweep_csv(tmp_path / "nope.csv")

    def test_wrong_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(InvalidParameterError):
            load_sweep_csv(path)

    def test_empty_data(self, tmp_path):
        result = make_fig5_result()
        header = rows_to_csv(result).splitlines()[0]
        path = tmp_path / "empty.csv"
        path.write_text(header + "\n")
        with pytest.raises(InvalidParameterError):
            load_sweep_csv(path)

    def test_malformed_number(self, tmp_path):
        result = make_fig5_result()
        text = rows_to_csv(result).replace("20.0", "twenty", 1)
        path = tmp_path / "bad.csv"
        path.write_text(text)
        with pytest.raises(InvalidParameterError):
            load_sweep_csv(path)


class TestResultsDirAndReport:
    def test_load_results_dir(self, tmp_path):
        path = tmp_path / "fig5_reduced.csv"
        path.write_text(rows_to_csv(make_fig5_result()))
        results = load_results_dir(tmp_path)
        assert set(results) == {"fig5"}

    def test_empty_dir_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            load_results_dir(tmp_path)

    def test_generate_report(self, tmp_path):
        (tmp_path / "fig5_reduced.csv").write_text(
            rows_to_csv(make_fig5_result()))
        report = generate_report(tmp_path)
        assert "fig5" in report
        assert "Claim checks" in report
        assert "C7" in report
        assert "claims pass" in report

    def test_report_on_committed_results(self):
        # The repository ships results/ from the committed reduced run;
        # the report over them must show all 7 claims passing.
        import pathlib
        results = pathlib.Path(__file__).resolve().parent.parent / "results"
        if not (results / "fig3_reduced.csv").exists():
            pytest.skip("committed results not present")
        report = generate_report(results)
        assert "7/7 claims pass" in report


class TestTourMap:
    @pytest.fixture
    def tour(self, small_net, radio, energy):
        from repro.core.algorithm2 import plan_algorithm2
        return plan_algorithm2(small_net, energy, radio, delta=25.0)

    def test_valid_svg(self, tour, radio):
        from repro.experiments.tour_map import render_tour_svg
        svg = render_tour_svg(tour, radio)
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_sensor_marker_each(self, tour, radio, small_net):
        from repro.experiments.tour_map import render_tour_svg
        svg = render_tour_svg(tour, radio)
        assert svg.count("sensor ") == small_net.n_nodes

    def test_hover_markers_match_tour(self, tour, radio):
        from repro.experiments.tour_map import render_tour_svg
        svg = render_tour_svg(tour, radio)
        assert svg.count("hover ") == tour.n_hovers

    def test_depot_present(self, tour, radio):
        from repro.experiments.tour_map import render_tour_svg
        assert "<title>depot</title>" in render_tour_svg(tour, radio)

    def test_coverage_toggle(self, tour, radio):
        from repro.experiments.tour_map import render_tour_svg
        with_cov = render_tour_svg(tour, radio, show_coverage=True)
        without = render_tour_svg(tour, radio, show_coverage=False)
        assert with_cov.count("fill-opacity") > without.count("fill-opacity")

    def test_caption_mentions_method(self, tour, radio):
        from repro.experiments.tour_map import render_tour_svg
        assert "algorithm2" in render_tour_svg(tour, radio)
