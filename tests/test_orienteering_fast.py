"""Vectorized GRASP engine — bitwise equivalence and warm-start contracts.

The whole point of ``engine="fast"`` is that it is *not* a different
solver: every restart of the stacked construction replays the scalar
path's choices exactly (same RNG tape, same sorted-RCL picks), so tours,
awards, costs, and the restart stats must match bitwise.  Hypothesis
hunts the corners; the plan-level tests pin the Algorithm 1 dispatch,
the reduction-aware tape sizing, and the strict-improvement warm-start
acceptance the δ-continuation mode relies on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.algorithm1 import ENGINES, check_engine, plan_algorithm1
from repro.energy.model import EnergyModel
from repro.geometry.distance import pairwise_distances
from repro.geometry.region import Region
from repro.network.sensor_network import SensorNetwork
from repro.orienteering.fast import solve_grasp_fast, stacked_constructions
from repro.orienteering.grasp import (GRASP_STAT_NAMES, solve_grasp,
                                      warm_tour_from_nodes)
from repro.orienteering.greedy import randomized_construct, solve_greedy
from repro.orienteering.problem import OrienteeringInstance
from repro.orienteering.solver import solve_orienteering
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError

RADIO = RadioModel(bandwidth=150.0, transmission_range=60.0, altitude=0.0)


def make_instance(seed, n=12, budget=None, conflicts=False):
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 100, (n, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, n)
    awards[0] = 0.0
    if budget is None:
        budget = float(rng.uniform(100, 500))
    groups = None
    if conflicts and n >= 5:
        groups = [np.array([1, 2]), np.array([3, 4])]
    return OrienteeringInstance(costs=costs, awards=awards, budget=budget,
                                depot=0, conflict_groups=groups)


def make_network(seed, n=10):
    rng = np.random.default_rng(seed)
    region = Region.square(300.0)
    return SensorNetwork(positions=region.sample_uniform(n, rng),
                         volumes=rng.uniform(10.0, 500.0, n),
                         depot=region.center, region=region)


ENERGY = EnergyModel(capacity=3e4, hover_power=150.0, travel_power=100.0,
                     speed=10.0)


class TestBitwiseEquivalence:
    @given(seed=st.integers(0, 10_000),
           n=st.integers(2, 16),
           n_restarts=st.integers(1, 9),
           rcl_size=st.integers(1, 5),
           grasp_seed=st.integers(0, 1_000),
           conflicts=st.booleans())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fast_matches_scalar_bitwise(self, seed, n, n_restarts,
                                         rcl_size, grasp_seed, conflicts):
        inst = make_instance(seed, n=n, conflicts=conflicts)
        scalar = solve_grasp(inst, n_restarts=n_restarts,
                             rcl_size=rcl_size, seed=grasp_seed)
        fast = solve_grasp_fast(inst, n_restarts=n_restarts,
                                rcl_size=rcl_size, seed=grasp_seed)
        np.testing.assert_array_equal(scalar.tour, fast.tour)
        assert scalar.award == fast.award          # bitwise, not approx
        assert scalar.cost == fast.cost
        assert scalar.stats == fast.stats

    @given(seed=st.integers(0, 5_000), n=st.integers(2, 14),
           n_restarts=st.integers(1, 6))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stacked_constructions_match_scalar_restarts(self, seed, n,
                                                         n_restarts):
        """Restart r of the stack equals the r-th scalar construction."""
        inst = make_instance(seed, n=n)
        rng = np.random.default_rng(0)
        from repro.orienteering._vector import draw_rng_tape
        tape = draw_rng_tape(rng, n_restarts, inst.n_nodes)
        stacked = stacked_constructions(inst, n_restarts, 3, tape)
        assert len(stacked) == n_restarts
        np.testing.assert_array_equal(stacked[0], solve_greedy(inst).tour)
        for r in range(1, n_restarts):
            ref = randomized_construct(inst, rcl_size=3, tape=tape[r - 1])
            np.testing.assert_array_equal(stacked[r], ref)

    def test_solver_facade_dispatch(self):
        inst = make_instance(3, n=10)
        scalar = solve_orienteering(inst, method="grasp", seed=1,
                                    engine="scalar")
        fast = solve_orienteering(inst, method="grasp", seed=1,
                                  engine="fast")
        np.testing.assert_array_equal(scalar.tour, fast.tour)
        with pytest.raises(InvalidParameterError):
            solve_orienteering(inst, method="grasp", engine="nope")


class TestAlgorithm1Engines:
    @pytest.mark.parametrize("reduction", [None, "safe", "aggressive"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_engines_agree_bitwise(self, seed, reduction):
        net = make_network(seed)
        tours = {
            engine: plan_algorithm1(net, ENERGY, RADIO, 30.0,
                                    n_restarts=4, seed=seed, engine=engine,
                                    site_reduction=reduction)
            for engine in ENGINES}
        a, b = tours["scalar"], tours["fast"]
        np.testing.assert_array_equal(a.points, b.points)
        np.testing.assert_array_equal(a.sojourns, b.sojourns)
        np.testing.assert_array_equal(a.collected, b.collected)
        assert a.meta["perf"]["engine"] == "scalar"
        assert b.meta["perf"]["engine"] == "fast"

    def test_safe_reduction_invariant_per_engine(self):
        """Reduction-aware tape: safe renumbering never changes the tour."""
        net = make_network(11)
        for engine in ENGINES:
            cold = plan_algorithm1(net, ENERGY, RADIO, 30.0, n_restarts=5,
                                   seed=2, engine=engine)
            red = plan_algorithm1(net, ENERGY, RADIO, 30.0, n_restarts=5,
                                  seed=2, engine=engine,
                                  site_reduction="safe")
            np.testing.assert_array_equal(cold.points, red.points)
            assert cold.collected_volume == red.collected_volume

    def test_meta_perf_grasp_stats_contract(self):
        net = make_network(5)
        tour = plan_algorithm1(net, ENERGY, RADIO, 30.0, n_restarts=3,
                               seed=0, engine="fast")
        stats = tour.meta["perf"]["grasp"]
        assert set(stats) == set(GRASP_STAT_NAMES)
        assert list(stats) == sorted(stats)      # sorted-key emission
        assert stats["restarts"] == 3
        assert stats["constructions"] >= 1
        assert all(isinstance(v, int) and v >= 0 for v in stats.values())

    def test_check_engine_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            check_engine("vectorised")
        net = make_network(1)
        with pytest.raises(InvalidParameterError):
            plan_algorithm1(net, ENERGY, RADIO, 30.0, engine="nope")


class TestWarmStarts:
    @given(seed=st.integers(0, 3_000), n=st.integers(3, 14),
           hint_seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_warm_tour_from_nodes_always_feasible(self, seed, n, hint_seed):
        inst = make_instance(seed, n=n, conflicts=True)
        rng = np.random.default_rng(hint_seed)
        hints = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
        tour = warm_tour_from_nodes(inst, hints)
        if tour is not None:
            assert inst.is_feasible(tour)
            assert inst.conflicts_ok(tour)
            assert set(tour) <= set(hints) | {0}

    def test_warm_tour_from_nodes_validates_range(self):
        inst = make_instance(0, n=8)
        with pytest.raises(InvalidParameterError):
            warm_tour_from_nodes(inst, [99])
        assert warm_tour_from_nodes(inst, np.empty(0, dtype=int)) is None

    @given(seed=st.integers(0, 3_000), n=st.integers(2, 12),
           engine=st.sampled_from(ENGINES))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_non_improving_warm_tour_leaves_result_unchanged(self, seed, n,
                                                             engine):
        """Strict-improvement acceptance: the winner's own tour as a warm
        start can never displace it, so the solution stays bitwise
        identical (only the warm-start counters move)."""
        inst = make_instance(seed, n=n)
        solver = solve_grasp_fast if engine == "fast" else solve_grasp
        cold = solver(inst, n_restarts=3, seed=0)
        warm = solver(inst, n_restarts=3, seed=0, warm_tour=cold.tour)
        np.testing.assert_array_equal(cold.tour, warm.tour)
        assert cold.award == warm.award
        assert warm.stats["warm_starts"] == 1
        assert warm.stats["warm_improved"] == 0

    def test_improving_warm_tour_wins(self):
        """A warm tour strictly better than every restart is kept."""
        inst = make_instance(42, n=12, budget=1e9)
        best = solve_grasp(inst, n_restarts=6, seed=0)
        # With an enormous budget the polish collects everything, so
        # force a weak baseline: single restart, no local search.
        weak = solve_grasp(inst, n_restarts=1, seed=0, local_search=False)
        if best.award > weak.award:
            warm = solve_grasp(inst, n_restarts=1, seed=0,
                               local_search=False, warm_tour=best.tour)
            assert warm.award >= best.award
            assert warm.stats["warm_improved"] == 1
