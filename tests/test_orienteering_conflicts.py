"""Tests for the conflict-neighbor-list encoding on OrienteeringInstance."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.orienteering.exact import solve_exact
from repro.orienteering.greedy import solve_greedy
from repro.orienteering.problem import OrienteeringInstance
from repro.utils.errors import InvalidParameterError


def base(rng, n=6):
    pts = rng.uniform(0, 100, (n, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, n)
    awards[0] = 0.0
    return costs, awards


def neighbor_lists(n, pairs):
    lists = [set() for _ in range(n)]
    for a, b in pairs:
        lists[a].add(b)
        lists[b].add(a)
    return [np.array(sorted(s), dtype=int) for s in lists]


class TestNeighborListConstruction:
    def test_accepted_and_queriable(self, rng):
        costs, awards = base(rng)
        inst = OrienteeringInstance(
            costs=costs, awards=awards, budget=1e6,
            conflict_neighbor_lists=neighbor_lists(6, [(1, 2), (3, 4)]))
        assert inst.has_conflicts
        np.testing.assert_array_equal(inst.neighbors_of(1), [2])
        np.testing.assert_array_equal(inst.neighbors_of(4), [3])
        assert len(inst.neighbors_of(5)) == 0

    def test_both_encodings_rejected(self, rng):
        costs, awards = base(rng)
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(
                costs=costs, awards=awards, budget=1.0,
                conflict_groups=[np.array([1, 2])],
                conflict_neighbor_lists=neighbor_lists(6, [(1, 2)]))

    def test_wrong_length_rejected(self, rng):
        costs, awards = base(rng)
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=awards, budget=1.0,
                                 conflict_neighbor_lists=[np.empty(0, int)])

    def test_self_conflict_rejected(self, rng):
        costs, awards = base(rng)
        lists = neighbor_lists(6, [])
        lists[2] = np.array([2])
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=awards, budget=1.0,
                                 conflict_neighbor_lists=lists)

    def test_asymmetric_rejected(self, rng):
        costs, awards = base(rng)
        lists = neighbor_lists(6, [])
        lists[1] = np.array([2])  # 2 does not list 1 back
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=awards, budget=1.0,
                                 conflict_neighbor_lists=lists)

    def test_out_of_range_rejected(self, rng):
        costs, awards = base(rng)
        lists = neighbor_lists(6, [])
        lists[1] = np.array([9])
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=awards, budget=1.0,
                                 conflict_neighbor_lists=lists)

    def test_no_conflicts_helpers(self, rng):
        costs, awards = base(rng)
        inst = OrienteeringInstance(costs=costs, awards=awards, budget=1.0)
        assert not inst.has_conflicts
        assert len(inst.neighbors_of(0)) == 0


class TestEncodingEquivalence:
    """Pairwise groups and neighbor lists must constrain identically."""

    @pytest.mark.parametrize("seed", range(4))
    def test_exact_solver_agrees(self, seed):
        rng = np.random.default_rng(seed)
        costs, awards = base(rng, n=7)
        pairs = [(1, 2), (3, 4), (2, 5)]
        budget = rng.uniform(150, 350)
        by_groups = OrienteeringInstance(
            costs=costs, awards=awards, budget=budget,
            conflict_groups=[np.array(p) for p in pairs])
        by_lists = OrienteeringInstance(
            costs=costs, awards=awards, budget=budget,
            conflict_neighbor_lists=neighbor_lists(7, pairs))
        a = solve_exact(by_groups)
        b = solve_exact(by_lists)
        assert a.award == pytest.approx(b.award)

    def test_greedy_agrees(self, rng):
        costs, awards = base(rng, n=7)
        pairs = [(1, 2), (3, 4)]
        by_groups = OrienteeringInstance(
            costs=costs, awards=awards, budget=1e6,
            conflict_groups=[np.array(p) for p in pairs])
        by_lists = OrienteeringInstance(
            costs=costs, awards=awards, budget=1e6,
            conflict_neighbor_lists=neighbor_lists(7, pairs))
        a = solve_greedy(by_groups)
        b = solve_greedy(by_lists)
        assert a.award == pytest.approx(b.award)

    def test_group_of_three_decomposes_to_pairs(self, rng):
        costs, awards = base(rng, n=6)
        group = OrienteeringInstance(
            costs=costs, awards=awards, budget=1e6,
            conflict_groups=[np.array([1, 2, 3])])
        pair_list = OrienteeringInstance(
            costs=costs, awards=awards, budget=1e6,
            conflict_neighbor_lists=neighbor_lists(
                6, [(1, 2), (1, 3), (2, 3)]))
        a = solve_exact(group)
        b = solve_exact(pair_list)
        assert a.award == pytest.approx(b.award)
        # At most one of {1,2,3} on either tour.
        assert len(set(a.tour) & {1, 2, 3}) <= 1
        assert len(set(b.tour) & {1, 2, 3}) <= 1
