"""Tests for repro.core.batch (column-stacked Algorithm 2/3 engine).

The batch engine's contract is *bitwise identity*: planning a capacity
column in one stacked call must reproduce, per variant, exactly the
tour the per-cell ``engine="kernel"`` (and ``"dense"``) path builds —
same points, sojourns, collected volumes, iteration counts — for any
column grouping.  These tests pin that contract on every seeded
scenario, plus the validation and diagnostics surface.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.batch import (
    BatchPlannerKernel,
    plan_algorithm2_batch,
    plan_algorithm3_batch,
)
from repro.core.hovering import build_hovering_sites
from repro.core.kernel import ENGINES, check_engine
from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.network.scenarios import SCENARIOS, make_scenario
from repro.utils.errors import InvalidParameterError

CAPACITIES = (2e4, 5e4, 1e5, 3e5, 8e5)


def _energies(capacities=CAPACITIES):
    return [EnergyModel(capacity=c, hover_power=150.0,
                        travel_power=100.0, speed=10.0)
            for c in capacities]


def assert_same_tour(a, b):
    """Bitwise tour equality (points, sojourns, collected, counts)."""
    assert np.array_equal(a.points, b.points)
    assert np.array_equal(a.sojourns, b.sojourns)
    assert np.array_equal(a.collected, b.collected)
    assert a.meta["n_visited"] == b.meta["n_visited"]
    assert a.meta["iterations"] == b.meta["iterations"]


class TestAlgorithm2Equivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_matches_kernel_and_dense_on_scenarios(self, name, radio):
        net = make_scenario(name, seed=2, n=30)
        energies = _energies()
        column = plan_algorithm2_batch(net, energies, radio, delta=30.0)
        for energy, batch in zip(energies, column):
            for engine in ("kernel", "dense"):
                single = plan_algorithm2(net, energy, radio, delta=30.0,
                                         engine=engine)
                assert_same_tour(batch, single)

    @pytest.mark.parametrize("scoring", ["ratio", "award"])
    @pytest.mark.parametrize("polish", [True, False])
    def test_scoring_and_polish_variants(self, small_net, radio,
                                         scoring, polish):
        energies = _energies()
        column = plan_algorithm2_batch(small_net, energies, radio,
                                       delta=25.0, scoring=scoring,
                                       polish=polish)
        for energy, batch in zip(energies, column):
            single = plan_algorithm2(small_net, energy, radio, delta=25.0,
                                     scoring=scoring, polish=polish,
                                     engine="kernel")
            assert_same_tour(batch, single)

    def test_engine_batch_dispatch_single(self, small_net, radio, energy):
        batch = plan_algorithm2(small_net, energy, radio, delta=25.0,
                                engine="batch")
        kernel = plan_algorithm2(small_net, energy, radio, delta=25.0,
                                 engine="kernel")
        assert_same_tour(batch, kernel)
        assert batch.meta["engine"] == "batch"

    def test_empty_network(self, generator, radio, energy):
        net = generator.uniform(0, seed=0)
        (tour,) = plan_algorithm2_batch(net, [energy], radio, delta=25.0)
        assert tour.collected_volume == 0.0
        assert len(tour.points) == 1

    def test_max_iterations_cap(self, small_net, radio, roomy_energy):
        column = plan_algorithm2_batch(small_net, [roomy_energy], radio,
                                       delta=25.0, max_iterations=3)
        single = plan_algorithm2(small_net, roomy_energy, radio,
                                 delta=25.0, max_iterations=3,
                                 engine="kernel")
        assert_same_tour(column[0], single)
        assert column[0].meta["iterations"] <= 3


class TestAlgorithm3Equivalence:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("K", [1, 3])
    def test_matches_kernel_and_dense_on_scenarios(self, name, K, radio):
        net = make_scenario(name, seed=5, n=30)
        energies = _energies()
        column = plan_algorithm3_batch(net, energies, radio,
                                       delta=30.0, K=K)
        for energy, batch in zip(energies, column):
            for engine in ("kernel", "dense"):
                single = plan_algorithm3(net, energy, radio, delta=30.0,
                                         K=K, engine=engine)
                assert_same_tour(batch, single)

    def test_engine_batch_dispatch_single(self, small_net, radio, energy):
        batch = plan_algorithm3(small_net, energy, radio, delta=25.0,
                                K=2, engine="batch")
        kernel = plan_algorithm3(small_net, energy, radio, delta=25.0,
                                 K=2, engine="kernel")
        assert_same_tour(batch, kernel)
        assert batch.meta["engine"] == "batch"


class TestGroupingInvariance:
    """Any column grouping yields identical tours AND perf snapshots."""

    def test_column_vs_singletons(self, small_net, radio):
        energies = _energies()
        column = plan_algorithm2_batch(small_net, energies, radio,
                                       delta=25.0)
        for energy, grouped in zip(energies, column):
            (alone,) = plan_algorithm2_batch(small_net, [energy], radio,
                                             delta=25.0)
            assert_same_tour(grouped, alone)
            pg = {k: v for k, v in grouped.meta["perf"].items()
                  if k != "seconds"}
            pa = {k: v for k, v in alone.meta["perf"].items()
                  if k != "seconds"}
            assert pg == pa

    def test_split_column_halves(self, small_net, radio):
        energies = _energies()
        column = plan_algorithm3_batch(small_net, energies, radio,
                                       delta=25.0, K=2)
        halves = (plan_algorithm3_batch(small_net, energies[:2], radio,
                                        delta=25.0, K=2)
                  + plan_algorithm3_batch(small_net, energies[2:], radio,
                                          delta=25.0, K=2))
        for grouped, split in zip(column, halves):
            assert_same_tour(grouped, split)


class TestValidation:
    def test_check_engine_lists_batch(self):
        with pytest.raises(InvalidParameterError) as excinfo:
            check_engine("warp")
        assert str(ENGINES) in str(excinfo.value)
        assert "batch" in str(excinfo.value)

    def test_christofides_batch_rejected(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError,
                           match="tsp_mode='insertion' only"):
            plan_algorithm2(small_net, energy, radio, delta=25.0,
                            engine="batch", tsp_mode="christofides")

    def test_mismatched_rates_rejected(self, small_net, radio):
        energies = [
            EnergyModel(capacity=2e4, hover_power=150.0,
                        travel_power=100.0, speed=10.0),
            EnergyModel(capacity=5e4, hover_power=175.0,
                        travel_power=100.0, speed=10.0),
        ]
        with pytest.raises(InvalidParameterError, match="rates"):
            plan_algorithm2_batch(small_net, energies, radio, delta=25.0)

    def test_empty_column_rejected(self, small_net, radio):
        with pytest.raises(InvalidParameterError):
            plan_algorithm2_batch(small_net, [], radio, delta=25.0)

    def test_bad_scoring_rejected(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError, match="scoring"):
            plan_algorithm2_batch(small_net, [energy], radio, delta=25.0,
                                  scoring="vibes")


class TestDiagnostics:
    def test_perf_snapshot_shape(self, small_net, radio):
        (tour,) = plan_algorithm2_batch(small_net, _energies((5e4,)),
                                        radio, delta=25.0)
        perf = tour.meta["perf"]
        assert perf["engine"] == "batch"
        for key in ("insertions", "drains", "tour_flushes",
                    "deltas_recomputed"):
            assert isinstance(perf[key], int)
        assert set(perf["seconds"]) == {"rescore", "insertion", "partial"}

    def test_column_metrics_counters(self, small_net, radio, energy):
        sites = build_hovering_sites(small_net, radio, 25.0)
        kern = BatchPlannerKernel(sites, _energies((2e4, 5e4)), radio)
        names = set(kern.metrics.counter_values())
        assert {"rounds", "union_sites_rescored"} <= names


class _Nets:
    """Lazily-built networks shared across hypothesis examples."""

    def __init__(self):
        self._cache = {}

    def get(self, seed, n):
        key = (seed, n)
        if key not in self._cache:
            gen = NetworkGenerator(Region.square(400.0),
                                   volume_range=(50.0, 500.0))
            self._cache[key] = gen.uniform(n, seed=seed)
        return self._cache[key]


_NETS = _Nets()


class TestEngineEquivalenceProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 20), n=st.integers(5, 18),
           caps=st.lists(st.sampled_from([1e4, 3e4, 8e4, 2e5, 6e5]),
                         min_size=1, max_size=4))
    def test_alg2_all_engines_agree(self, radio, seed, n, caps):
        net = _NETS.get(seed, n)
        energies = _energies(caps)
        column = plan_algorithm2_batch(net, energies, radio, delta=30.0)
        for energy, batch in zip(energies, column):
            for engine in ("kernel", "dense"):
                assert_same_tour(batch, plan_algorithm2(
                    net, energy, radio, delta=30.0, engine=engine))

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 10), n=st.integers(5, 15),
           K=st.integers(1, 3),
           caps=st.lists(st.sampled_from([1e4, 3e4, 8e4, 2e5]),
                         min_size=1, max_size=3))
    def test_alg3_all_engines_agree(self, radio, seed, n, K, caps):
        net = _NETS.get(seed, n)
        energies = _energies(caps)
        column = plan_algorithm3_batch(net, energies, radio,
                                       delta=30.0, K=K)
        for energy, batch in zip(energies, column):
            for engine in ("kernel", "dense"):
                assert_same_tour(batch, plan_algorithm3(
                    net, energy, radio, delta=30.0, K=K, engine=engine))
