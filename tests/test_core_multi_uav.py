"""Unit tests for the multi-UAV extension (repro.core.multi_uav)."""

import numpy as np
import pytest

from repro.core.multi_uav import partition_kmeans, partition_sectors, plan_fleet
from repro.core.planner import plan_tour
from repro.core.tour import validate_tour_feasibility
from repro.utils.errors import InvalidParameterError


class TestPartitionSectors:
    def test_every_sensor_assigned(self, small_net):
        a = partition_sectors(small_net, 3)
        assert a.shape == (small_net.n_nodes,)
        assert set(np.unique(a)) <= {0, 1, 2}

    def test_balanced_counts(self, small_net):
        a = partition_sectors(small_net, 4)
        counts = np.bincount(a, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_single_uav_gets_all(self, small_net):
        a = partition_sectors(small_net, 1)
        assert (a == 0).all()

    def test_sectors_are_angularly_contiguous(self, small_net):
        a = partition_sectors(small_net, 3)
        rel = small_net.positions - small_net.depot[None, :]
        angles = np.arctan2(rel[:, 1], rel[:, 0])
        order = np.argsort(angles, kind="stable")
        labels_in_order = a[order]
        # Sorted by angle, the labels must form contiguous runs.
        changes = int((np.diff(labels_in_order) != 0).sum())
        assert changes <= 2  # 3 runs -> 2 boundaries

    def test_empty_network(self, generator):
        net = generator.uniform(0, seed=0)
        assert len(partition_sectors(net, 2)) == 0

    def test_invalid_count(self, small_net):
        with pytest.raises(InvalidParameterError):
            partition_sectors(small_net, 0)


class TestPartitionKmeans:
    def test_every_sensor_assigned(self, small_net):
        a = partition_kmeans(small_net, 3, seed=0)
        assert a.shape == (small_net.n_nodes,)
        assert a.max() < 3 and a.min() >= 0

    def test_deterministic_given_seed(self, small_net):
        np.testing.assert_array_equal(partition_kmeans(small_net, 3, seed=4),
                                      partition_kmeans(small_net, 3, seed=4))

    def test_more_uavs_than_sensors(self, generator):
        net = generator.uniform(3, seed=0)
        a = partition_kmeans(net, 5, seed=0)
        assert len(a) == 3

    def test_clusters_follow_geography(self, clustered_net):
        a = partition_kmeans(clustered_net, 3, seed=1)
        # Sensors in the same spatial cluster should mostly share a label:
        # mean intra-label distance << mean overall distance.
        from repro.geometry.distance import pairwise_distances
        d = pairwise_distances(clustered_net.positions)
        same = a[:, None] == a[None, :]
        np.fill_diagonal(same, False)
        intra = d[same].mean()
        overall = d[~np.eye(len(d), dtype=bool)].mean()
        assert intra < overall


class TestPlanFleet:
    def test_fleet_tours_feasible(self, small_net, radio, energy):
        plan = plan_fleet(small_net, energy, radio, n_uavs=3,
                          method="algorithm2", delta=25.0)
        assert plan.n_uavs == 3
        for tour in plan.tours:
            assert validate_tour_feasibility(tour, radio=radio).feasible

    def test_disjoint_collection(self, small_net, radio, energy):
        plan = plan_fleet(small_net, energy, radio, n_uavs=3,
                          method="algorithm2", delta=25.0)
        # Per-sensor totals never exceed stored volume (disjoint sectors).
        assert (plan.collected <= small_net.volumes + 1e-9).all()

    def test_fleet_beats_single_uav(self, clustered_net, radio, energy):
        single = plan_tour(clustered_net, energy, radio,
                           method="algorithm2", delta=25.0)
        fleet = plan_fleet(clustered_net, energy, radio, n_uavs=3,
                           method="algorithm2", delta=25.0)
        # 3 batteries >= 1 battery of collection (same per-UAV capacity).
        assert fleet.collected_volume >= single.collected_volume - 1e-6

    def test_makespan_is_max(self, small_net, radio, energy):
        plan = plan_fleet(small_net, energy, radio, n_uavs=2,
                          method="algorithm2", delta=25.0)
        assert plan.makespan == pytest.approx(
            max(t.mission_time for t in plan.tours))

    def test_kmeans_partition_mode(self, small_net, radio, energy):
        plan = plan_fleet(small_net, energy, radio, n_uavs=2,
                          method="algorithm2", partition="kmeans",
                          delta=25.0, seed=0)
        assert plan.n_uavs == 2

    def test_benchmark_method(self, small_net, radio, energy):
        plan = plan_fleet(small_net, energy, radio, n_uavs=2,
                          method="benchmark")
        assert plan.collected_volume >= 0

    def test_unknown_partition_rejected(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError):
            plan_fleet(small_net, energy, radio, n_uavs=2,
                       partition="voronoi")
