"""Unit tests for the greedy / local-search / GRASP orienteering solvers."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.orienteering.exact import solve_exact
from repro.orienteering.grasp import solve_grasp
from repro.orienteering.greedy import randomized_construct, solve_greedy
from repro.orienteering.local_search import improve_solution
from repro.orienteering.problem import OrienteeringInstance
from repro.orienteering.solver import AUTO_EXACT_THRESHOLD, solve_orienteering
from repro.utils.errors import InvalidParameterError


def make_instance(rng, n=12, budget=None, groups=None):
    pts = rng.uniform(0, 100, (n, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, n)
    awards[0] = 0.0
    if budget is None:
        budget = rng.uniform(150, 400)
    return OrienteeringInstance(costs=costs, awards=awards, budget=budget,
                                depot=0, conflict_groups=groups)


class TestGreedy:
    @pytest.mark.parametrize("seed", range(5))
    def test_feasible(self, seed):
        inst = make_instance(np.random.default_rng(seed))
        sol = solve_greedy(inst)
        assert inst.is_feasible(sol.tour)

    def test_zero_budget_depot_only(self, rng):
        inst = make_instance(rng, budget=0.0)
        sol = solve_greedy(inst)
        np.testing.assert_array_equal(sol.tour, [0])

    def test_collects_everything_with_huge_budget(self, rng):
        inst = make_instance(rng, budget=1e9)
        sol = solve_greedy(inst)
        assert sol.award == pytest.approx(inst.awards.sum())

    def test_zero_award_nodes_never_visited(self, rng):
        inst = make_instance(rng, budget=1e9)
        # All awards zero except node 1.
        awards = np.zeros(inst.n_nodes)
        awards[1] = 5.0
        inst2 = OrienteeringInstance(costs=inst.costs, awards=awards,
                                     budget=1e9, depot=0)
        sol = solve_greedy(inst2)
        assert sorted(sol.tour) == [0, 1]

    def test_respects_conflicts(self, rng):
        groups = [np.array([1, 2, 3])]
        inst = make_instance(rng, budget=1e9, groups=groups)
        sol = solve_greedy(inst)
        assert inst.conflicts_ok(sol.tour)
        on = set(sol.tour) & {1, 2, 3}
        assert len(on) <= 1


class TestRandomizedConstruct:
    def test_feasible(self, rng):
        inst = make_instance(rng)
        tour = randomized_construct(inst, seed=1, rcl_size=3)
        assert inst.is_feasible(tour)

    def test_deterministic_given_seed(self, rng):
        inst = make_instance(rng)
        a = randomized_construct(inst, seed=9, rcl_size=3)
        b = randomized_construct(inst, seed=9, rcl_size=3)
        np.testing.assert_array_equal(a, b)


class TestLocalSearch:
    @pytest.mark.parametrize("seed", range(5))
    def test_never_worse_than_start(self, seed):
        inst = make_instance(np.random.default_rng(seed))
        start = solve_greedy(inst).tour
        improved = improve_solution(inst, start)
        assert improved.award >= inst.tour_award(start) - 1e-9
        assert inst.is_feasible(improved.tour)

    def test_depot_only_start(self, rng):
        inst = make_instance(rng)
        sol = improve_solution(inst, np.array([0]))
        assert inst.is_feasible(sol.tour)
        assert sol.award >= 0

    def test_respects_conflicts(self, rng):
        groups = [np.array([1, 2]), np.array([3, 4])]
        inst = make_instance(rng, budget=1e9, groups=groups)
        sol = improve_solution(inst, np.array([0]))
        assert inst.conflicts_ok(sol.tour)


class TestGrasp:
    @pytest.mark.parametrize("seed", range(4))
    def test_at_least_as_good_as_greedy(self, seed):
        inst = make_instance(np.random.default_rng(seed))
        gr = solve_greedy(inst)
        gp = solve_grasp(inst, seed=0, n_restarts=4)
        assert gp.award >= gr.award - 1e-9
        assert inst.is_feasible(gp.tour)

    @pytest.mark.parametrize("seed", range(6))
    def test_near_exact_on_small(self, seed):
        rng = np.random.default_rng(200 + seed)
        inst = make_instance(rng, n=9)
        ex = solve_exact(inst)
        gp = solve_grasp(inst, seed=1, n_restarts=8)
        assert gp.award >= 0.9 * ex.award - 1e-9

    def test_deterministic_given_seed(self, rng):
        inst = make_instance(rng)
        a = solve_grasp(inst, seed=5, n_restarts=4)
        b = solve_grasp(inst, seed=5, n_restarts=4)
        np.testing.assert_array_equal(a.tour, b.tour)

    def test_restart_count_validated(self, rng):
        inst = make_instance(rng)
        with pytest.raises(InvalidParameterError):
            solve_grasp(inst, n_restarts=0)

    def test_no_local_search_mode(self, rng):
        inst = make_instance(rng)
        sol = solve_grasp(inst, seed=2, n_restarts=3, local_search=False)
        assert inst.is_feasible(sol.tour)


class TestSolverFacade:
    def test_auto_small_uses_exact(self, rng):
        inst = make_instance(rng, n=AUTO_EXACT_THRESHOLD)
        sol = solve_orienteering(inst)
        assert sol.method == "exact-dp"

    def test_auto_large_uses_grasp(self, rng):
        inst = make_instance(rng, n=AUTO_EXACT_THRESHOLD + 1)
        sol = solve_orienteering(inst, seed=0)
        assert sol.method == "grasp"

    def test_explicit_methods(self, rng):
        inst = make_instance(rng, n=8)
        for method in ("exact", "grasp", "greedy"):
            sol = solve_orienteering(inst, method=method, seed=0)
            assert inst.is_feasible(sol.tour)

    def test_unknown_method_rejected(self, rng):
        inst = make_instance(rng, n=8)
        with pytest.raises(InvalidParameterError):
            solve_orienteering(inst, method="magic")

    def test_exact_size_guard(self, rng):
        from repro.orienteering.exact import MAX_EXACT_NODES
        inst = make_instance(rng, n=MAX_EXACT_NODES + 2)
        with pytest.raises(InvalidParameterError):
            solve_orienteering(inst, method="exact")
