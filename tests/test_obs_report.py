"""Tests for repro.obs.report summarisation and the python -m repro.obs CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import write_jsonl
from repro.obs.report import SpanStats, render_table, summarize
from repro.obs.tracer import Tracer


def make_records():
    """Two roots: one with two children, one flat repeat of a name."""
    tracer = Tracer()
    with tracer.span("planner.plan_tour"):
        with tracer.span("kernel.rescore"):
            pass
        with tracer.span("kernel.rescore"):
            pass
    with tracer.span("sim.mission"):
        pass
    return tracer.records()


class TestSummarize:
    def test_counts_and_ordering(self):
        stats = summarize(make_records())
        by_name = {s.name: s for s in stats}
        assert by_name["kernel.rescore"].count == 2
        assert by_name["planner.plan_tour"].count == 1
        # Sorted by total descending; the root envelops its children.
        assert stats[0].name == "planner.plan_tour"

    def test_self_time_subtracts_direct_children(self):
        stats = {s.name: s for s in summarize(make_records())}
        root = stats["planner.plan_tour"]
        children_total = stats["kernel.rescore"].total_s
        assert root.self_s == pytest.approx(
            max(root.total_s - children_total, 0.0), abs=1e-9)
        # Leaves own all their time.
        leaf = stats["kernel.rescore"]
        assert leaf.self_s == pytest.approx(leaf.total_s)

    def test_mean_and_p95(self):
        records = [
            {"name": "a.b", "ts_s": 0.0, "dur_s": d, "id": i,
             "parent": None, "depth": 0, "attrs": {}}
            for i, d in enumerate([1.0, 2.0, 3.0, 4.0])
        ]
        (s,) = summarize(records)
        assert s.total_s == 10.0
        assert s.mean_s == 2.5
        assert s.p95_s == 4.0  # nearest rank on 4 samples

    def test_orphaned_children_tolerated(self):
        # A dropped parent (ring-buffer truncation) must not crash or
        # double-count: children referencing a missing id stand alone.
        records = [{"name": "kid.op", "ts_s": 0.0, "dur_s": 1.0, "id": 5,
                    "parent": 99, "depth": 3, "attrs": {}}]
        (s,) = summarize(records)
        assert s.total_s == 1.0 and s.self_s == 1.0

    def test_empty(self):
        assert summarize([]) == []

    def test_as_dict(self):
        s = SpanStats(name="a.b", count=1, total_s=1.0, mean_s=1.0,
                      p95_s=1.0, self_s=0.5)
        assert s.as_dict()["self_s"] == 0.5


class TestRenderTable:
    def test_contains_all_names_and_header(self):
        text = render_table(summarize(make_records()))
        for fragment in ("span", "count", "total", "mean", "p95", "self",
                         "planner.plan_tour", "kernel.rescore",
                         "sim.mission"):
            assert fragment in text

    def test_top_limits_rows(self):
        text = render_table(summarize(make_records()), top=1)
        assert "planner.plan_tour" in text
        assert "sim.mission" not in text

    def test_empty_placeholder(self):
        assert "(no spans recorded)" in render_table([])

    def test_columns_align(self):
        lines = render_table(summarize(make_records())).splitlines()
        assert len({len(line) for line in lines[:2]}) == 1


class TestCli:
    def test_report_table(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        write_jsonl(make_records(), trace)
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "planner.plan_tour" in out and "4 span(s)" in out

    def test_report_json(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        write_jsonl(make_records(), trace)
        assert main(["report", str(trace), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans"] == 4
        assert {s["name"] for s in payload["stats"]} == {
            "planner.plan_tour", "kernel.rescore", "sim.mission"}

    def test_report_chrome_trace_conversion(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        out_json = tmp_path / "t.json"
        write_jsonl(make_records(), trace)
        assert main(["report", str(trace),
                     "--chrome-trace", str(out_json)]) == 0
        assert json.loads(out_json.read_text())["traceEvents"]

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "not found" in capsys.readouterr().err

    def test_no_command_exits_2(self, capsys):
        assert main([]) == 2

    def test_demo_writes_trace_and_reports(self, tmp_path, capsys):
        out = tmp_path / "demo.jsonl"
        chrome = tmp_path / "demo.json"
        assert main(["demo", "--out", str(out), "--chrome-trace", str(chrome),
                     "--nodes", "12", "--seed", "3"]) == 0
        captured = capsys.readouterr()
        assert "planner.plan_tour" in captured.out
        assert out.exists() and chrome.exists()
        # The demo trace summarises cleanly through the report command.
        assert main(["report", str(out), "--top", "5"]) == 0
