"""Unit tests for repro.tsp.exact (Held–Karp)."""

import itertools

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.tsp.exact import MAX_EXACT_NODES, held_karp
from repro.tsp.length import tour_length_matrix, validate_tour
from repro.utils.errors import InvalidParameterError


def brute_force_optimum(dist):
    n = len(dist)
    best = np.inf
    for perm in itertools.permutations(range(1, n)):
        tour = np.array([0, *perm])
        best = min(best, tour_length_matrix(tour, dist))
    return best


class TestHeldKarp:
    @pytest.mark.parametrize("n", [3, 4, 5, 6, 7])
    def test_matches_brute_force(self, n, rng):
        dist = pairwise_distances(rng.uniform(0, 100, (n, 2)))
        tour, length = held_karp(dist)
        assert length == pytest.approx(brute_force_optimum(dist))
        assert tour_length_matrix(tour, dist) == pytest.approx(length)

    def test_tour_is_valid_permutation(self, rng):
        dist = pairwise_distances(rng.uniform(0, 100, (8, 2)))
        tour, _ = held_karp(dist)
        validate_tour(tour, 8)
        assert len(tour) == 8 and tour[0] == 0

    def test_custom_start(self, rng):
        dist = pairwise_distances(rng.uniform(0, 100, (6, 2)))
        tour, length = held_karp(dist, start=3)
        assert tour[0] == 3
        _, length0 = held_karp(dist, start=0)
        # Optimal tour length is start-invariant.
        assert length == pytest.approx(length0)

    def test_trivial_sizes(self):
        t, length = held_karp(np.zeros((0, 0)))
        assert len(t) == 0 and length == 0.0
        t, length = held_karp(np.zeros((1, 1)))
        assert list(t) == [0] and length == 0.0

    def test_two_nodes(self):
        d = np.array([[0.0, 7.0], [7.0, 0.0]])
        t, length = held_karp(d)
        assert length == 14.0

    def test_size_limit(self):
        n = MAX_EXACT_NODES + 1
        with pytest.raises(InvalidParameterError):
            held_karp(np.zeros((n, n)))

    def test_bad_start(self, rng):
        dist = pairwise_distances(rng.uniform(0, 10, (4, 2)))
        with pytest.raises(InvalidParameterError):
            held_karp(dist, start=4)

    def test_known_square(self):
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        _, length = held_karp(pairwise_distances(pts))
        assert length == pytest.approx(4.0)
