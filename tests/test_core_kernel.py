"""The incremental planner kernel: equivalence, invalidation, caches.

Three layers of guarantees:

1. **End-to-end bitwise equivalence** — ``engine="kernel"`` and
   ``engine="dense"`` produce *identical* tours (points, sojourns,
   collected volumes) for Algorithms 2/3 and the benchmark baseline on
   seeded instances across δ ∈ {10, 20, 40} and K ∈ {1, 2, 4}.
2. **Component oracles** — the dirty-set residual cache, the partial-award
   table, the incremental cheapest-insertion cache, and the prune cache
   each match a brute-force recomputation after arbitrary mutation
   sequences.
3. **Edge cases** — empty networks, zero-sensor coverage matrices
   (the ``(m, 0)`` row-max guard), and the perf-counter contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithm2 import _insertion_deltas, plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.benchmark_alg import plan_benchmark
from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.kernel import ENGINES, PlannerKernel, PruneCache, check_engine
from repro.energy.model import EnergyModel
from repro.geometry.coverage import SparseCoverage
from repro.geometry.distance import pairwise_distances
from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError

RADIO = RadioModel(bandwidth=150.0, transmission_range=50.0, altitude=0.0)
ENERGY = EnergyModel(capacity=2e4, hover_power=150.0,
                     travel_power=100.0, speed=10.0)


def _net(seed: int, n: int = 30) -> SensorNetwork:
    gen = NetworkGenerator(Region.square(400.0), volume_range=(50.0, 500.0))
    return gen.uniform(n, seed=seed)


def _assert_same_tour(a, b) -> None:
    """Bitwise equality of everything the planner decides."""
    np.testing.assert_array_equal(a.points, b.points)
    np.testing.assert_array_equal(a.sojourns, b.sojourns)
    np.testing.assert_array_equal(a.collected, b.collected)
    assert a.meta["n_visited"] == b.meta["n_visited"]
    assert a.meta["iterations"] == b.meta["iterations"]


class TestCheckEngine:
    def test_accepts_known_engines(self):
        for eng in ENGINES:
            assert check_engine(eng) == eng

    def test_rejects_unknown(self):
        with pytest.raises(InvalidParameterError):
            check_engine("turbo")


class TestSparseCoverage:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_roundtrip_against_matrix(self, seed):
        rng = np.random.default_rng(seed)
        cov = rng.random((13, 9)) < 0.25
        cov[3] = False                       # a site covering nothing
        cov[:, 5] = False                    # a sensor covered by nobody
        csr = SparseCoverage.from_matrix(cov)
        assert csr.n_sites == 13 and csr.n_sensors == 9
        assert csr.nnz == int(cov.sum())
        for j in range(13):
            np.testing.assert_array_equal(csr.sensors_of(j),
                                          np.flatnonzero(cov[j]))
        for v in range(9):
            np.testing.assert_array_equal(csr.sites_of(v),
                                          np.flatnonzero(cov[:, v]))

    def test_sites_covering_matches_oracle(self):
        rng = np.random.default_rng(3)
        cov = rng.random((11, 7)) < 0.3
        csr = SparseCoverage.from_matrix(cov)
        for _ in range(10):
            sensors = np.flatnonzero(rng.random(7) < 0.4)
            expect = np.flatnonzero(cov[:, sensors].any(axis=1)) \
                if len(sensors) else np.empty(0, dtype=int)
            np.testing.assert_array_equal(csr.sites_covering(sensors), expect)

    def test_gather_segments_reproduce_row_sums(self):
        rng = np.random.default_rng(4)
        cov = rng.random((10, 8)) < 0.3
        vals = rng.random(8) * 100
        csr = SparseCoverage.from_matrix(cov)
        sites = np.array([0, 2, 3, 7, 9])
        idxs, starts, lengths = csr.gather(sites)
        flat = vals[idxs]
        for row, (s, ln) in enumerate(zip(starts, lengths)):
            assert np.isclose(flat[s:s + ln].sum(),
                              vals[cov[sites[row]]].sum())

    def test_empty_matrix(self):
        csr = SparseCoverage.from_matrix(np.zeros((0, 0), dtype=bool))
        assert csr.nnz == 0
        assert len(csr.sites_covering(np.empty(0, dtype=int))) == 0


class TestDirtySetResiduals:
    """Kernel residual cache vs the dense Eq. 11/12 oracle."""

    def _kernels(self, seed=0):
        net = _net(seed)
        sites = build_hovering_sites(net, RADIO, 25.0)
        return (sites, PlannerKernel(sites, ENERGY, RADIO, engine="kernel"))

    def test_initial_scores_match_oracle(self):
        sites, kern = self._kernels()
        p_res, t_res = kern.residual_scores()
        rem = sites.network.volumes
        np.testing.assert_allclose(p_res, sites.residual_awards(rem),
                                   rtol=1e-12)
        # max + division are order-independent: exact equality expected.
        np.testing.assert_array_equal(t_res, sites.residual_hover_times(rem))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scores_after_random_drains(self, seed):
        sites, kern = self._kernels(seed)
        rng = np.random.default_rng(seed + 100)
        for step in range(12):
            site = int(rng.integers(sites.n_sites))
            if step % 3 == 0:
                kern.drain_full(site)
            else:
                kern.drain_partial(site, float(rng.random() * 2.0))
            p_res, t_res = kern.residual_scores()
            np.testing.assert_allclose(
                p_res, sites.residual_awards(kern.rem), rtol=1e-12)
            np.testing.assert_array_equal(
                t_res, sites.residual_hover_times(kern.rem))

    def test_rescores_only_overlapping_sites(self):
        sites, kern = self._kernels()
        kern.residual_scores()                     # initial full scoring
        base = kern.counters["sites_rescored"]
        assert base == sites.n_sites
        site = 0
        touched = sites.cov_matrix[:, sites.cov_matrix[site]].any(axis=1)
        kern.drain_full(site)
        kern.residual_scores()
        rescored = kern.counters["sites_rescored"] - base
        assert rescored == int(touched.sum())
        assert rescored < sites.n_sites            # genuinely sub-linear
        # A second call with nothing drained rescores nothing.
        kern.residual_scores()
        assert kern.counters["sites_rescored"] - base == rescored

    @pytest.mark.parametrize("K", [1, 2, 4])
    def test_partial_scores_match_dense_engine(self, K):
        net = _net(5)
        sites = build_hovering_sites(net, RADIO, 25.0)
        a = PlannerKernel(sites, ENERGY, RADIO, engine="kernel",
                          volume_tol=1e-9)
        b = PlannerKernel(sites, ENERGY, RADIO, engine="dense",
                          volume_tol=1e-9)
        fractions = np.arange(1, K + 1) / K
        rng = np.random.default_rng(5)
        for _ in range(8):
            ta, taua, pa = a.partial_scores(fractions)
            tb, taub, pb = b.partial_scores(fractions)
            np.testing.assert_array_equal(ta, tb)
            np.testing.assert_array_equal(taua, taub)
            np.testing.assert_allclose(pa, pb, rtol=1e-12)
            site = int(rng.integers(sites.n_sites))
            dur = float(rng.random() * 1.5)
            a.drain_partial(site, dur)
            b.drain_partial(site, dur)
            np.testing.assert_array_equal(a.rem, b.rem)


class TestInsertionCache:
    """Incremental delta cache vs the full-scan `_insertion_deltas` oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_insert_sequence_matches_full_scan(self, seed):
        net = _net(seed, n=25)
        sites = build_hovering_sites(net, RADIO, 30.0)
        kern = PlannerKernel(sites, ENERGY, RADIO, engine="kernel")
        rng = np.random.default_rng(seed + 50)
        candidates = rng.permutation(sites.n_sites)[:min(10, sites.n_sites)]
        for site in candidates:
            deltas, positions = kern.insertion_state()
            oracle_d, oracle_p = _insertion_deltas(
                sites.points, kern.points_all[np.array(kern.tour)])
            np.testing.assert_array_equal(deltas, oracle_d)
            np.testing.assert_array_equal(positions, oracle_p)
            kern.insert(int(site))
        # and once more after the final insertion
        deltas, positions = kern.insertion_state()
        oracle_d, oracle_p = _insertion_deltas(
            sites.points, kern.points_all[np.array(kern.tour)])
        np.testing.assert_array_equal(deltas, oracle_d)
        np.testing.assert_array_equal(positions, oracle_p)

    def test_insert_keeps_tour_consistent(self):
        net = _net(9, n=15)
        sites = build_hovering_sites(net, RADIO, 40.0)
        kern = PlannerKernel(sites, ENERGY, RADIO, engine="kernel")
        for site in range(min(5, sites.n_sites)):
            kern.insertion_state()
            pos = kern.insert(site)
            assert kern.tour[pos] == site + 1
            assert kern.in_tour[site + 1]
        assert kern.tour[0] == 0
        assert len(set(kern.tour)) == len(kern.tour)

    def test_set_tour_flushes_cache(self):
        net = _net(2, n=15)
        sites = build_hovering_sites(net, RADIO, 40.0)
        kern = PlannerKernel(sites, ENERGY, RADIO, engine="kernel")
        kern.insertion_state()
        for site in range(min(4, sites.n_sites)):
            kern.insert(site)
        reordered = [kern.tour[0]] + kern.tour[:0:-1]
        kern.set_tour(reordered)
        assert kern.counters["tour_flushes"] == 1
        deltas, positions = kern.insertion_state()
        oracle_d, oracle_p = _insertion_deltas(
            sites.points, kern.points_all[np.array(kern.tour)])
        np.testing.assert_array_equal(deltas, oracle_d)
        np.testing.assert_array_equal(positions, oracle_p)

    def test_set_tour_requires_depot(self):
        net = _net(2, n=10)
        sites = build_hovering_sites(net, RADIO, 40.0)
        kern = PlannerKernel(sites, ENERGY, RADIO)
        with pytest.raises(InvalidParameterError):
            kern.set_tour([1, 2])


class TestPruneCache:
    """Neighbour-only removal rescoring vs a full recompute oracle."""

    def _instance(self, seed, k=12):
        rng = np.random.default_rng(seed)
        pts = rng.random((k + 1, 2)) * 300
        dist = pairwise_distances(pts)
        volumes = rng.random(k) * 400 + 50
        hover = volumes / RADIO.bandwidth
        return dist, volumes, hover

    def _oracle_ratios(self, cache):
        fresh = PruneCache(cache.dist, cache.volumes, cache.hover_times,
                           cache.eta_h, cache.etat_m)
        fresh.set_tour(list(cache.tour))
        return fresh._ratios

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_remove_sequence_matches_oracle(self, seed):
        dist, volumes, hover = self._instance(seed)
        cache = PruneCache(dist, volumes, hover,
                           ENERGY.hover_power, ENERGY.travel_cost_per_meter)
        cache.set_tour(list(range(len(volumes) + 1)))
        while len(cache.tour) > 2:
            np.testing.assert_array_equal(cache._ratios,
                                          self._oracle_ratios(cache))
            i = cache.best()
            assert i >= 0
            assert cache.tour[i] != 0
            cache.remove(i)
        np.testing.assert_array_equal(cache._ratios,
                                      self._oracle_ratios(cache))

    def test_depot_never_selected(self):
        dist, volumes, hover = self._instance(7, k=5)
        cache = PruneCache(dist, volumes, hover,
                           ENERGY.hover_power, ENERGY.travel_cost_per_meter)
        cache.set_tour([0])
        assert cache.best() == -1


class TestEngineEquivalenceAlg2:
    """Alg. 2 kernel vs dense: identical on ≥10 seeded instances."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("delta", [10.0, 20.0, 40.0])
    def test_insertion_mode(self, seed, delta):
        net = _net(seed)
        a = plan_algorithm2(net, ENERGY, RADIO, delta, engine="kernel")
        b = plan_algorithm2(net, ENERGY, RADIO, delta, engine="dense")
        _assert_same_tour(a, b)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_christofides_mode(self, seed):
        net = _net(seed, n=12)
        a = plan_algorithm2(net, ENERGY, RADIO, 40.0,
                            tsp_mode="christofides", engine="kernel")
        b = plan_algorithm2(net, ENERGY, RADIO, 40.0,
                            tsp_mode="christofides", engine="dense")
        _assert_same_tour(a, b)

    @pytest.mark.parametrize("scoring", ["award", "proximity", "hover_ratio"])
    def test_scoring_variants(self, scoring):
        net = _net(4)
        a = plan_algorithm2(net, ENERGY, RADIO, 20.0, scoring=scoring,
                            engine="kernel")
        b = plan_algorithm2(net, ENERGY, RADIO, 20.0, scoring=scoring,
                            engine="dense")
        _assert_same_tour(a, b)

    def test_no_polish(self):
        net = _net(6)
        a = plan_algorithm2(net, ENERGY, RADIO, 20.0, polish=False,
                            engine="kernel")
        b = plan_algorithm2(net, ENERGY, RADIO, 20.0, polish=False,
                            engine="dense")
        _assert_same_tour(a, b)


class TestEngineEquivalenceAlg3:
    """Alg. 3 kernel vs dense across δ and K."""

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("delta", [10.0, 20.0, 40.0])
    @pytest.mark.parametrize("K", [1, 2, 4])
    def test_partial_collection(self, seed, delta, K):
        net = _net(seed)
        a = plan_algorithm3(net, ENERGY, RADIO, delta, K=K, engine="kernel")
        b = plan_algorithm3(net, ENERGY, RADIO, delta, K=K, engine="dense")
        _assert_same_tour(a, b)

    def test_no_polish(self):
        net = _net(3)
        a = plan_algorithm3(net, ENERGY, RADIO, 20.0, K=2, polish=False,
                            engine="kernel")
        b = plan_algorithm3(net, ENERGY, RADIO, 20.0, K=2, polish=False,
                            engine="dense")
        _assert_same_tour(a, b)


class TestEngineEquivalenceBenchmark:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_prune_loop(self, seed):
        net = _net(seed)
        a = plan_benchmark(net, ENERGY, RADIO, engine="kernel")
        b = plan_benchmark(net, ENERGY, RADIO, engine="dense")
        np.testing.assert_array_equal(a.points, b.points)
        np.testing.assert_array_equal(a.sojourns, b.sojourns)
        np.testing.assert_array_equal(a.collected, b.collected)
        assert a.meta["removals"] == b.meta["removals"]
        # The incremental cache does strictly less rescoring work.
        if a.meta["removals"] > 2:
            assert (a.meta["perf"]["ratios_rescored"]
                    < b.meta["perf"]["ratios_rescored"])


class TestPerfCounters:
    def test_alg2_meta_perf(self):
        net = _net(0, n=15)
        tour = plan_algorithm2(net, ENERGY, RADIO, 30.0)
        perf = tour.meta["perf"]
        assert perf["engine"] == "kernel"
        for key in ("insertions", "drains", "tour_flushes",
                    "sites_rescored", "deltas_recomputed"):
            assert perf[key] >= 0
        assert set(perf["seconds"]) == {"rescore", "insertion", "partial"}
        assert tour.meta["engine"] == "kernel"

    def test_alg3_meta_perf(self):
        net = _net(0, n=15)
        tour = plan_algorithm3(net, ENERGY, RADIO, 30.0, K=2)
        assert tour.meta["perf"]["engine"] == "kernel"
        assert tour.meta["perf"]["drains"] > 0

    def test_kernel_beats_dense_on_rescoring(self):
        net = _net(1)
        a = plan_algorithm2(net, ENERGY, RADIO, 15.0, engine="kernel")
        b = plan_algorithm2(net, ENERGY, RADIO, 15.0, engine="dense")
        assert (a.meta["perf"]["sites_rescored"]
                < b.meta["perf"]["sites_rescored"])


class TestEdgeCases:
    def _empty_net(self):
        return SensorNetwork(positions=np.empty((0, 2)),
                             volumes=np.empty(0),
                             depot=np.array([0.0, 0.0]),
                             region=Region.square(100.0))

    def test_residual_hover_times_zero_sensors(self):
        """(m, 0) coverage: the reduced-axis guard must not raise."""
        net = self._empty_net()
        sites = HoveringSites(points=np.array([[10.0, 10.0], [20.0, 20.0]]),
                              cov_matrix=np.zeros((2, 0), dtype=bool),
                              awards=np.zeros(2), hover_times=np.zeros(2),
                              network=net, radio=RADIO, delta=10.0)
        out = sites.residual_hover_times(np.empty(0))
        np.testing.assert_array_equal(out, np.zeros(2))
        np.testing.assert_array_equal(sites.residual_awards(np.empty(0)),
                                      np.zeros(2))

    def test_build_sites_no_prune_zero_sensors(self):
        net = self._empty_net()
        sites = build_hovering_sites(net, RADIO, 50.0, prune=False)
        assert sites.n_sites > 0
        np.testing.assert_array_equal(sites.hover_times,
                                      np.zeros(sites.n_sites))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_planners_on_empty_network(self, engine):
        net = self._empty_net()
        t2 = plan_algorithm2(net, ENERGY, RADIO, 25.0, engine=engine)
        assert t2.meta["n_visited"] == 0
        t3 = plan_algorithm3(net, ENERGY, RADIO, 25.0, K=2, engine=engine)
        assert t3.meta["n_visited"] == 0
        tb = plan_benchmark(net, ENERGY, RADIO, engine=engine)
        assert tb.meta["n_visited"] == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_kernel_zero_sensor_sites(self, engine):
        """A kernel over (m, 0) coverage scores everything as zero."""
        net = self._empty_net()
        sites = build_hovering_sites(net, RADIO, 50.0, prune=False)
        kern = PlannerKernel(sites, ENERGY, RADIO, engine=engine)
        p_res, t_res = kern.residual_scores()
        np.testing.assert_array_equal(p_res, np.zeros(sites.n_sites))
        np.testing.assert_array_equal(t_res, np.zeros(sites.n_sites))

    def test_rejects_bad_engine(self):
        net = _net(0, n=10)
        with pytest.raises(InvalidParameterError):
            plan_algorithm2(net, ENERGY, RADIO, 25.0, engine="gpu")
        with pytest.raises(InvalidParameterError):
            plan_algorithm3(net, ENERGY, RADIO, 25.0, K=2, engine="gpu")
        with pytest.raises(InvalidParameterError):
            plan_benchmark(net, ENERGY, RADIO, engine="gpu")
