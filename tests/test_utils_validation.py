"""Unit tests for repro.utils.validation."""

import math

import numpy as np
import pytest

from repro.utils.errors import InvalidParameterError
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_integer,
    check_non_negative,
    check_points_array,
    check_positive,
)


class TestCheckFinite:
    def test_accepts_int(self):
        assert check_finite(3, "x") == 3.0

    def test_accepts_float(self):
        assert check_finite(2.5, "x") == 2.5

    def test_accepts_numpy_scalar(self):
        assert check_finite(np.float64(1.5), "x") == 1.5

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError, match="x"):
            check_finite(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(InvalidParameterError):
            check_finite(math.inf, "x")

    def test_rejects_string(self):
        with pytest.raises(InvalidParameterError):
            check_finite("5", "x")

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_finite(True, "x")

    def test_rejects_none(self):
        with pytest.raises(InvalidParameterError):
            check_finite(None, "x")

    def test_error_names_parameter(self):
        with pytest.raises(InvalidParameterError, match="my_param"):
            check_finite(float("inf"), "my_param")


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(0.001, "x") == 0.001

    def test_rejects_zero(self):
        with pytest.raises(InvalidParameterError):
            check_positive(0.0, "x")

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_positive(-1.0, "x")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_accepts_positive(self):
        assert check_non_negative(5, "x") == 5.0

    def test_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            check_non_negative(-1e-9, "x")


class TestCheckInRange:
    def test_inclusive_bounds_accepted(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_bounds_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive=False)

    def test_interior_accepted_both_modes(self):
        assert check_in_range(0.5, "x", 0.0, 1.0) == 0.5
        assert check_in_range(0.5, "x", 0.0, 1.0, inclusive=False) == 0.5

    def test_outside_rejected(self):
        with pytest.raises(InvalidParameterError):
            check_in_range(2.0, "x", 0.0, 1.0)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(4, "x") == 4

    def test_accepts_integral_float(self):
        assert check_integer(4.0, "x") == 4

    def test_accepts_numpy_int(self):
        assert check_integer(np.int64(7), "x") == 7

    def test_rejects_fractional_float(self):
        with pytest.raises(InvalidParameterError):
            check_integer(4.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(InvalidParameterError):
            check_integer(True, "x")

    def test_minimum_enforced(self):
        with pytest.raises(InvalidParameterError):
            check_integer(0, "x", minimum=1)

    def test_minimum_boundary_accepted(self):
        assert check_integer(1, "x", minimum=1) == 1


class TestCheckPointsArray:
    def test_accepts_n_by_2(self):
        arr = check_points_array([[0, 1], [2, 3]], "pts")
        assert arr.shape == (2, 2)
        assert arr.dtype == float

    def test_promotes_single_point(self):
        arr = check_points_array([1.0, 2.0], "pts")
        assert arr.shape == (1, 2)

    def test_rejects_wrong_width(self):
        with pytest.raises(InvalidParameterError):
            check_points_array([[1, 2, 3]], "pts")

    def test_rejects_nan_coordinates(self):
        with pytest.raises(InvalidParameterError):
            check_points_array([[np.nan, 0.0]], "pts")

    def test_accepts_empty(self):
        arr = check_points_array(np.empty((0, 2)), "pts")
        assert arr.shape == (0, 2)
