"""The ``--flow`` acceptance criteria as tests.

The repo's own ``src`` tree must be clean under the interprocedural
rules with the shipped (empty) baseline, and the whole flow pass —
call graph, taint fixpoint, all three rules — must stay fast enough for
the CI ``lint-flow`` job's 30-second pin.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.cli import check_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_src_tree_is_flow_clean():
    findings = check_paths(REPO_ROOT, [REPO_ROOT / "src"], flow=True)
    assert findings == [], "\n".join(f.location + " " + f.message
                                     for f in findings)


def test_flow_pass_is_fast_enough_for_ci():
    start = time.perf_counter()
    check_paths(REPO_ROOT, [REPO_ROOT / "src"], flow=True)
    elapsed_s = time.perf_counter() - start
    assert elapsed_s < 30.0, (
        f"flow pass took {elapsed_s:.1f}s; the CI lint-flow job pins 30s")
