"""Unit tests for repro.core.algorithm1 (orienteering reduction)."""

import numpy as np
import pytest

from repro.core.algorithm1 import plan_algorithm1
from repro.core.tour import validate_tour_feasibility
from repro.utils.errors import InvalidParameterError


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(3))
    def test_feasible_on_random_nets(self, generator, radio, energy, seed):
        net = generator.uniform(15, seed=seed)
        tour = plan_algorithm1(net, energy, radio, delta=30.0, seed=0,
                               n_restarts=2)
        report = validate_tour_feasibility(tour, radio=radio)
        assert report.feasible

    def test_depot_first(self, small_net, radio, energy):
        tour = plan_algorithm1(small_net, energy, radio, delta=30.0, seed=0,
                               n_restarts=2)
        np.testing.assert_allclose(tour.points[0], small_net.depot)

    def test_tiny_budget_collects_nothing(self, small_net, radio):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        tour = plan_algorithm1(small_net, tiny, radio, delta=30.0, seed=0)
        assert tour.collected_volume == 0.0
        assert tour.total_energy <= 1.0

    def test_huge_budget_collects_everything(self, small_net, radio,
                                             roomy_energy):
        tour = plan_algorithm1(small_net, roomy_energy, radio, delta=30.0,
                               seed=0, n_restarts=2)
        # With conflict mode, disjointness may leave sensors on the table
        # only if no conflict-free cover exists; with delta <= R0 a cover
        # always exists for isolated sensors, but overlapping clusters can
        # block 100 % collection.  Require at least 60 % here and exact
        # totals in the overlap="ignore" test below.
        assert tour.collected_volume >= 0.6 * small_net.total_volume

    def test_ignore_mode_huge_budget_collects_everything(
            self, small_net, radio, roomy_energy):
        tour = plan_algorithm1(small_net, roomy_energy, radio, delta=30.0,
                               overlap="ignore", seed=0, n_restarts=2)
        assert tour.collected_volume == pytest.approx(small_net.total_volume)


class TestOverlapModes:
    def test_conflict_mode_visits_disjoint_sites(self, clustered_net, radio,
                                                 roomy_energy):
        from repro.core.hovering import build_hovering_sites
        tour = plan_algorithm1(clustered_net, roomy_energy, radio,
                               delta=25.0, overlap="conflict", seed=0,
                               n_restarts=2)
        # Recover which sensors each visited hover point covers and check
        # pairwise disjointness.
        sites = build_hovering_sites(clustered_net, radio, 25.0)
        covered_sets = []
        for p, s in zip(tour.points[1:], tour.sojourns[1:]):
            d = np.linalg.norm(sites.network.positions - p, axis=1)
            covered_sets.append(set(np.flatnonzero(d <= radio.coverage_radius)))
        for i in range(len(covered_sets)):
            for j in range(i + 1, len(covered_sets)):
                assert not (covered_sets[i] & covered_sets[j])

    def test_conflict_award_equals_volume(self, small_net, radio, energy):
        tour = plan_algorithm1(small_net, energy, radio, delta=30.0,
                               overlap="conflict", seed=0, n_restarts=2)
        # No double counting: orienteering award == true collected volume.
        assert tour.meta["orienteering_award"] == pytest.approx(
            tour.collected_volume)

    def test_ignore_mode_award_at_least_volume(self, clustered_net, radio,
                                               energy):
        tour = plan_algorithm1(clustered_net, energy, radio, delta=25.0,
                               overlap="ignore", seed=0, n_restarts=2)
        assert tour.meta["orienteering_award"] >= tour.collected_volume - 1e-6

    def test_invalid_mode_rejected(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError):
            plan_algorithm1(small_net, energy, radio, delta=30.0,
                            overlap="sometimes")

    def test_delta_above_r0_rejected(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError):
            plan_algorithm1(small_net, energy, radio, delta=60.0)


class TestQuality:
    def test_beats_or_matches_benchmark(self, generator, radio, energy):
        from repro.core.benchmark_alg import plan_benchmark
        net = generator.uniform(20, seed=42)
        alg1 = plan_algorithm1(net, energy, radio, delta=30.0, seed=0,
                               n_restarts=3)
        bench = plan_benchmark(net, energy, radio)
        # The paper's headline: Algorithm 1 dominates the baseline.
        assert alg1.collected_volume >= bench.collected_volume - 1e-6

    def test_exact_solver_on_tiny_instance(self, generator, radio, energy):
        # 3 sensors keep the candidate-site count within the exact DP limit.
        net = generator.uniform(3, seed=1)
        tour = plan_algorithm1(net, energy, radio, delta=50.0,
                               solver="exact")
        report = validate_tour_feasibility(tour, radio=radio)
        assert report.feasible

    def test_deterministic_given_seed(self, small_net, radio, energy):
        a = plan_algorithm1(small_net, energy, radio, delta=30.0, seed=3,
                            n_restarts=2)
        b = plan_algorithm1(small_net, energy, radio, delta=30.0, seed=3,
                            n_restarts=2)
        np.testing.assert_allclose(a.points, b.points)
        assert a.collected_volume == b.collected_volume

    def test_meta_fields(self, small_net, radio, energy):
        tour = plan_algorithm1(small_net, energy, radio, delta=30.0, seed=0,
                               n_restarts=2)
        assert tour.method == "algorithm1"
        assert tour.meta["n_candidates"] > 0
        assert tour.meta["delta"] == 30.0
        assert tour.meta["n_visited"] == tour.n_hovers
