"""δ-continuation warm starts — unit and sweep-level contracts.

The mode's two promises: (a) with the reduction off or ``safe`` a
continuation cell never collects *less* than its cold-start value
(strict-improvement acceptance), and (b) the chains are deterministic
and identical across execution engines (``jobs=1`` vs ``jobs=2``).
"""

import numpy as np
import pytest

from repro.core.reduce import reduce_sites, resolve_reduction
from repro.experiments.artifacts import ARTIFACT_OPTIONS, ArtifactCache
from repro.experiments.config import ExperimentConfig
from repro.experiments.continuation import (CHAINABLE_METHODS,
                                            chainable_spec,
                                            continuation_order,
                                            project_warm_nodes,
                                            tour_seed_points)
from repro.experiments.fig4 import fig4_algorithms, run_fig4
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, run_sweep

CONFIG = ExperimentConfig(n_nodes=24, n_instances=2, seed=13)
DELTAS = [30.0, 20.0, 15.0]


def alg1_spec(engine="fast"):
    return AlgoSpec("Algorithm 1", "algorithm1",
                    {"solver": "grasp", "n_restarts": 3, "seed": 0,
                     "engine": engine})


def make_kwargs(cfg, value, spec):
    kwargs = dict(spec.kwargs)
    if spec.method != "benchmark":
        kwargs["delta"] = value
    return kwargs


def sweep(algos, values=DELTAS, **kw):
    return run_sweep(
        CONFIG, make_instances(CONFIG), algos,
        param_name="delta", param_values=values,
        make_energy=lambda cfg, value: cfg.energy_model(),
        make_kwargs=make_kwargs, validate=True, **kw)


def timeless(row):
    d = row.as_dict()
    del d["mean_time_s"], d["std_time_s"]
    return d


class TestHelpers:
    def test_continuation_order_descending_and_stable(self):
        assert continuation_order([10.0, 30.0, 20.0]) == [1, 2, 0]
        assert continuation_order([20.0, 20.0, 25.0]) == [2, 0, 1]
        assert continuation_order([]) == []

    def test_chainable_spec(self):
        assert "algorithm1" in CHAINABLE_METHODS
        assert chainable_spec(CONFIG, alg1_spec(), DELTAS, make_kwargs)
        bench = AlgoSpec("Benchmark", "benchmark", {})
        assert not chainable_spec(CONFIG, bench, DELTAS, make_kwargs)
        alg2 = AlgoSpec("Algorithm 2", "algorithm2", {})
        assert not chainable_spec(CONFIG, alg2, DELTAS, make_kwargs)
        assert not chainable_spec(CONFIG, alg1_spec(), [], make_kwargs)
        # Fixed (non-swept) delta breaks the chain contract.
        fixed = AlgoSpec("Algorithm 1", "algorithm1", {"delta": 25.0})
        assert not chainable_spec(CONFIG, fixed, DELTAS,
                                  lambda cfg, v, s: dict(s.kwargs))
        # Caller-supplied warm payloads are never overridden.
        warm = AlgoSpec("Algorithm 1", "algorithm1", {"warm_nodes": [1]})
        assert not chainable_spec(CONFIG, warm, DELTAS, make_kwargs)

    def test_project_warm_nodes(self):
        net = make_instances(CONFIG)[0]
        cache = ArtifactCache()
        sites = cache.sites(net, CONFIG.radio_model(), 20.0)
        # Projecting the sites' own points maps each to itself (+1).
        pts = sites.points[:3]
        assert project_warm_nodes(pts, sites) == [1, 2, 3]
        # Duplicates dedup, order preserved.
        assert project_warm_nodes(np.vstack([pts[1], pts[1], pts[0]]),
                                  sites) == [2, 1]
        assert project_warm_nodes(np.empty((0, 2)), sites) is None

    def test_tour_seed_points_is_json_data(self):
        import json
        net = make_instances(CONFIG)[0]
        from repro.core.planner import plan_tour
        tour = plan_tour(net, CONFIG.energy_model(), CONFIG.radio_model(),
                         method="algorithm1", delta=20.0, seed=0)
        seed = tour_seed_points(tour)
        assert json.dumps(seed)          # plain nested lists
        assert len(seed) == len(tour.points) - 1
        np.testing.assert_allclose(np.asarray(seed), tour.points[1:])


class TestCorridorSeed:
    def test_seeded_reduction_deterministic(self):
        net = make_instances(CONFIG)[0]
        cache = ArtifactCache()
        sites = cache.sites(net, CONFIG.radio_model(), 15.0)
        reduction = resolve_reduction("aggressive")
        seed = np.array([[100.0, 100.0], [200.0, 150.0]])
        a = reduce_sites(sites, reduction, energy=CONFIG.energy_model(),
                         corridor_seed=seed)
        b = reduce_sites(sites, reduction, energy=CONFIG.energy_model(),
                         corridor_seed=seed)
        np.testing.assert_array_equal(a.survivors, b.survivors)
        # Every sensor still covered (coverage repair ran).
        assert a.cov_matrix.any(axis=0).all()

    def test_seed_joins_aggressive_key_only(self):
        energy = CONFIG.energy_model()
        seed = [[1.0, 2.0], [3.0, 4.0]]
        token = ArtifactCache._reduction_token
        aggressive = resolve_reduction("aggressive")
        assert (token(aggressive, energy, seed)
                != token(aggressive, energy, None))
        assert (token(aggressive, energy, seed)
                != token(aggressive, energy, [[1.0, 2.0]]))
        # The safe level has no corridor stage: the seed is unused and
        # must not split the cache entry.
        safe = resolve_reduction("safe")
        assert token(safe, energy, seed) == token(safe, energy, None)
        assert "corridor_seed" in ARTIFACT_OPTIONS

    def test_augment_kwargs_consumes_seed(self):
        net = make_instances(CONFIG)[0]
        cache = ArtifactCache()
        augmented = cache.augment_kwargs(
            net, CONFIG.energy_model(), CONFIG.radio_model(), "algorithm1",
            {"delta": 20.0, "corridor_seed": [[10.0, 10.0]]})
        assert "corridor_seed" not in augmented
        assert "sites" in augmented


class TestContinuationSweeps:
    def test_rejects_non_delta_sweeps_and_no_cache(self):
        with pytest.raises(ValueError, match="delta"):
            run_sweep(CONFIG, make_instances(CONFIG), [alg1_spec()],
                      param_name="capacity", param_values=[1e4],
                      make_energy=lambda c, v: c.energy_model(capacity=v),
                      make_kwargs=lambda c, v, s: dict(s.kwargs),
                      delta_continuation=True)
        with pytest.raises(ValueError, match="cache"):
            sweep([alg1_spec()], cache=False, delta_continuation=True)

    def test_never_worse_than_cold_and_jobs_parity(self):
        algos = [alg1_spec(), AlgoSpec("Benchmark", "benchmark", {})]
        cold = sweep(algos)
        warm = sweep(algos, delta_continuation=True)
        warm2 = sweep(algos, delta_continuation=True, jobs=2)
        assert cold.meta["continuation_chains"] == 0
        assert warm.meta["continuation_chains"] == CONFIG.n_instances
        assert warm2.meta["continuation_chains"] == CONFIG.n_instances
        for r_cold, r1, r2 in zip(cold.rows, warm.rows, warm2.rows):
            assert r1.deterministic_dict() == r2.deterministic_dict()
            if r_cold.algorithm == "Algorithm 1":
                assert (r1.mean_volume_gb
                        >= r_cold.mean_volume_gb - 1e-12)
            else:
                # Non-chainable specs keep the per-cell path untouched.
                assert timeless(r1) == timeless(r_cold)

    def test_duplicate_delta_rows_identical(self):
        """An equal-δ pair chains trivially: the warm tour equals the
        cold winner, strict improvement rejects it, rows match."""
        warm = sweep([alg1_spec()], values=[20.0, 20.0],
                     delta_continuation=True)
        assert timeless(warm.rows[0]) == timeless(warm.rows[1])
        # The finer (later) cell did evaluate the warm start.
        assert warm.rows[1].perf["grasp.warm_starts"] == 1.0

    def test_engines_agree_under_continuation(self):
        warm_fast = sweep([alg1_spec("fast")], delta_continuation=True)
        warm_scalar = sweep([alg1_spec("scalar")], delta_continuation=True)
        for rf, rs in zip(warm_fast.rows, warm_scalar.rows):
            assert rf.mean_volume_gb == rs.mean_volume_gb
            assert rf.perf["grasp.warm_starts"] \
                == rs.perf["grasp.warm_starts"]

    def test_aggressive_reduction_jobs_parity(self):
        warm = sweep([alg1_spec()], delta_continuation=True,
                     site_reduction="aggressive")
        warm2 = sweep([alg1_spec()], delta_continuation=True,
                      site_reduction="aggressive", jobs=2)
        for r1, r2 in zip(warm.rows, warm2.rows):
            assert r1.deterministic_dict() == r2.deterministic_dict()


class TestFig4Wiring:
    def test_fig4_algorithms_optional_alg1(self):
        names = [s.name for s in fig4_algorithms(CONFIG)]
        assert "Algorithm 1" not in names
        with_alg1 = fig4_algorithms(CONFIG, algorithm1=True, engine="fast")
        assert with_alg1[0].name == "Algorithm 1"
        assert with_alg1[0].kwargs["engine"] == "fast"
        assert names == [s.name for s in with_alg1[1:]]

    def test_run_fig4_continuation_implies_alg1(self):
        config = ExperimentConfig(n_nodes=15, n_instances=1, seed=3)
        result = run_fig4(config, delta_continuation=True, engine="fast")
        assert "Algorithm 1" in result.algorithms()
        assert result.meta["continuation_chains"] == 1
