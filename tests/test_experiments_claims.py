"""Unit tests for repro.experiments.claims."""

import pytest

from repro.experiments.claims import (
    check_all_claims,
    check_fig3_claims,
    check_fig4_claims,
    check_fig5_claims,
    claims_to_markdown,
)
from repro.experiments.config import reduced_settings
from repro.experiments.runner import SweepResult, SweepRow
from repro.utils.errors import InvalidParameterError


def rows_for(param_name, specs):
    """specs: list of (param_value, algo, volume, time)."""
    return [SweepRow(param_name, v, a, mean_volume_gb=vol,
                     std_volume_gb=0.0, mean_time_s=t, std_time_s=0.0,
                     n_instances=1)
            for v, a, vol, t in specs]


def fig3_like(alg1_vols, bench_vols, alg1_times, bench_times):
    caps = [1e4 * (i + 1) for i in range(len(alg1_vols))]
    specs = []
    for c, v, t in zip(caps, alg1_vols, alg1_times):
        specs.append((c, "Algorithm 1", v, t))
    for c, v, t in zip(caps, bench_vols, bench_times):
        specs.append((c, "Benchmark", v, t))
    return SweepResult(config=reduced_settings(),
                       rows=rows_for("capacity", specs))


class TestFig3Claims:
    def test_paper_shape_passes(self):
        result = fig3_like(alg1_vols=[20, 30, 40], bench_vols=[10, 18, 25],
                           alg1_times=[1.0, 2.0, 3.0],
                           bench_times=[3.0, 2.0, 1.0])
        claims = check_fig3_claims(result)
        assert all(c.passed for c in claims)

    def test_c1_fails_when_ratio_low(self):
        result = fig3_like(alg1_vols=[11, 30, 40], bench_vols=[10, 18, 25],
                           alg1_times=[1, 2, 3], bench_times=[3, 2, 1])
        c1 = check_fig3_claims(result)[0]
        assert not c1.passed

    def test_c2_fails_when_gap_shrinks(self):
        result = fig3_like(alg1_vols=[20, 21, 26], bench_vols=[10, 18, 25],
                           alg1_times=[1, 2, 3], bench_times=[3, 2, 1])
        c2 = check_fig3_claims(result)[1]
        assert not c2.passed

    def test_c3_fails_when_benchmark_time_rises(self):
        result = fig3_like(alg1_vols=[20, 30, 40], bench_vols=[10, 18, 25],
                           alg1_times=[1, 2, 3], bench_times=[1, 2, 3])
        c3 = check_fig3_claims(result)[2]
        assert not c3.passed

    def test_missing_algorithm_rejected(self):
        result = fig3_like(alg1_vols=[20], bench_vols=[10],
                           alg1_times=[1], bench_times=[1])
        with pytest.raises(InvalidParameterError):
            check_fig3_claims(result, alg1="Algorithm 9")


def fig4_like(a2, a3k2, a3k4, bench, *, a2_t=0.1, a3k2_t=0.3, a3k4_t=0.9):
    deltas = [10.0 * (i + 1) for i in range(len(a2))]
    specs = []
    for d, v in zip(deltas, a2):
        specs.append((d, "Algorithm 2", v, a2_t))
    for d, v in zip(deltas, a3k2):
        specs.append((d, "Algorithm 3 (K=2)", v, a3k2_t))
    for d, v in zip(deltas, a3k4):
        specs.append((d, "Algorithm 3 (K=4)", v, a3k4_t))
    for d, v in zip(deltas, bench):
        specs.append((d, "Benchmark", v, 0.05))
    return SweepResult(config=reduced_settings(),
                       rows=rows_for("delta", specs))


class TestFig4Claims:
    def test_paper_shape_passes(self):
        result = fig4_like(a2=[40, 38, 36], a3k2=[41, 39, 37],
                           a3k4=[42, 40, 38], bench=[20, 20, 20])
        claims = check_fig4_claims(result)
        assert all(c.passed for c in claims)

    def test_c4_fails_when_benchmark_wins(self):
        result = fig4_like(a2=[21, 20, 19], a3k2=[41, 39, 37],
                           a3k4=[42, 40, 38], bench=[20, 20, 20])
        c4 = check_fig4_claims(result)[0]
        assert not c4.passed

    def test_c5_fails_when_volume_rises_with_delta(self):
        result = fig4_like(a2=[30, 35, 40], a3k2=[41, 39, 37],
                           a3k4=[42, 40, 38], bench=[10, 10, 10])
        c5 = check_fig4_claims(result)[1]
        assert not c5.passed

    def test_c6_fails_when_k_ordering_broken(self):
        result = fig4_like(a2=[40, 38, 36], a3k2=[41, 39, 37],
                           a3k4=[42, 40, 38], bench=[20, 20, 20],
                           a3k2_t=0.9, a3k4_t=0.3)
        c6 = check_fig4_claims(result)[2]
        assert not c6.passed


class TestFig5Claims:
    def test_paper_shape_passes(self):
        result = fig4_like(a2=[30, 40, 50], a3k2=[31, 41, 51],
                           a3k4=[32, 42, 52], bench=[15, 25, 35])
        # Reuse the fig4-like builder; param name is irrelevant to C7.
        claims = check_fig5_claims(result)
        assert claims[0].passed

    def test_fails_without_growth(self):
        result = fig4_like(a2=[50, 50, 50], a3k2=[51, 51, 51],
                           a3k4=[52, 52, 52], bench=[35, 35, 35])
        assert not check_fig5_claims(result)[0].passed

    def test_fails_on_non_monotone(self):
        result = fig4_like(a2=[30, 20, 50], a3k2=[31, 41, 51],
                           a3k4=[32, 42, 52], bench=[15, 25, 35])
        assert not check_fig5_claims(result)[0].passed


class TestAggregation:
    def test_check_all_requires_input(self):
        with pytest.raises(InvalidParameterError):
            check_all_claims()

    def test_check_all_concatenates(self):
        fig3 = fig3_like(alg1_vols=[20, 30], bench_vols=[10, 18],
                         alg1_times=[1, 2], bench_times=[2, 1])
        fig5 = fig4_like(a2=[30, 40], a3k2=[31, 41], a3k4=[32, 42],
                         bench=[15, 25])
        claims = check_all_claims(fig3=fig3, fig5=fig5)
        assert [c.claim_id for c in claims] == ["C1", "C2", "C3", "C7"]

    def test_markdown_rendering(self):
        fig3 = fig3_like(alg1_vols=[20, 30], bench_vols=[10, 18],
                         alg1_times=[1, 2], bench_times=[2, 1])
        text = claims_to_markdown(check_fig3_claims(fig3))
        assert "| C1 |" in text and "PASS" in text


class TestEndToEndClaims:
    """Run the checker on a real (tiny) sweep — the full pipeline."""

    def test_real_fig4_sweep_claims(self):
        from repro.experiments.fig4 import run_fig4
        cfg = reduced_settings().scaled(
            n_nodes=40, n_instances=2, capacity=2.2e4,
            delta_sweep=(15.0, 30.0, 45.0), k_values=(2,), seed=3)
        result = run_fig4(cfg)
        claims = check_fig4_claims(result)
        # C4 (dominance) must hold even on tiny instances; C5/C6 can be
        # noisy at this size, so only assert they produce a verdict.
        assert claims[0].passed
        assert len(claims) == 3
