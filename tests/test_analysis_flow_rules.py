"""Fixture-driven tests for the three interprocedural flow rules.

Each fixture package under ``tests/flow_fixtures/<name>/src/repro/``
ships at least one deliberate true positive, one inline-suppressed case,
and one clean negative; the tests assert all three behaviours plus the
multi-hop interprocedural traces the findings must carry.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import Project, run_rules
from repro.analysis.flow import FlowContext, flow_rules
from repro.analysis.flow.determinism import FlowDeterminismRule
from repro.analysis.flow.parity import FlowParityRule
from repro.analysis.flow.transport import FlowTransportRule

FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"


def load_fixture(name: str) -> Project:
    return Project.load(FIXTURES / name, [Path("src")])


def raw_findings(project: Project, rule) -> list:
    """Rule output before suppression (run_rules applies the allows)."""
    return sorted(rule.check(project),
                  key=lambda f: (f.path, f.line, f.message))


class TestFlowDeterminism:
    def test_reported_and_suppressed_split(self):
        project = load_fixture("determinism")
        kept = run_rules(project, [FlowDeterminismRule()])
        assert [(f.path, f.line) for f in kept] == [
            ("src/repro/flowfix/planner.py", 30),
            ("src/repro/flowfix/planner.py", 40),
        ]

    def test_planner_return_true_positive_is_multi_hop(self):
        project = load_fixture("determinism")
        kept = run_rules(project, [FlowDeterminismRule()])
        ret = next(f for f in kept if "planner return value" in f.message)
        assert "time.perf_counter()" in ret.message
        assert "plan_fixture" in ret.message
        # The trace must cross both function boundaries on the way from
        # the clock module to the planner-return sink.
        assert "clock.py:18" in ret.hint
        assert "_pad" in ret.hint
        assert "plan_fixture" in ret.hint

    def test_span_attribute_sink_fires(self):
        project = load_fixture("determinism")
        kept = run_rules(project, [FlowDeterminismRule()])
        span = next(f for f in kept if "span attribute" in f.message)
        assert "'pad'" in span.message

    def test_inline_allow_suppresses_id_key(self):
        project = load_fixture("determinism")
        raw = raw_findings(project, FlowDeterminismRule())
        assert any("unstable_key" in f.message for f in raw)
        kept = run_rules(project, [FlowDeterminismRule()])
        assert not any("unstable_key" in f.message for f in kept)

    def test_negatives_stay_clean(self):
        project = load_fixture("determinism")
        raw = raw_findings(project, FlowDeterminismRule())
        assert not any("plan_quiet" in f.message for f in raw)
        assert not any("by stable_key()" in f.message for f in raw)


class TestFlowTransport:
    def test_numpy_scalar_return_is_reported_with_evidence(self):
        project = load_fixture("transport")
        kept = run_rules(project, [FlowTransportRule()])
        assert [(f.path, f.line) for f in kept] == [
            ("src/repro/flowtp/worker.py", 22)]
        finding = kept[0]
        assert "work_unit" in finding.message
        assert "numpy" in finding.message
        # Evidence must follow the call into the helper module.
        assert "stats.py:18" in finding.hint
        assert "summarize" in finding.hint

    def test_inline_allow_suppresses_bytes_return(self):
        project = load_fixture("transport")
        raw = raw_findings(project, FlowTransportRule())
        assert any("noisy_unit" in f.message for f in raw)
        kept = run_rules(project, [FlowTransportRule()])
        assert not any("noisy_unit" in f.message for f in kept)

    def test_safe_worker_is_clean(self):
        project = load_fixture("transport")
        raw = raw_findings(project, FlowTransportRule())
        assert not any("clean_unit" in f.message for f in raw)


class TestFlowParity:
    def test_reported_set(self):
        project = load_fixture("parity")
        kept = run_rules(project, [FlowParityRule()])
        messages = [f.message for f in kept]
        assert len(messages) == 2
        assert any("BKernel.perf" in m and "'flushes'" in m
                   for m in messages)
        assert any("plan_fix_batch" in m and "'sites'" in m
                   for m in messages)

    def test_dispatch_only_and_rename_are_not_drift(self):
        project = load_fixture("parity")
        raw = raw_findings(project, FlowParityRule())
        # `engine` is dispatch-only and `energy -> energies` is the
        # sanctioned structural rename: neither may be reported.
        assert not any("'engine'" in f.message or "'energy'" in f.message
                       for f in raw)
        assert not any("plan_ok" in f.message for f in raw)

    def test_inline_allows_suppress_sanctioned_gaps(self):
        project = load_fixture("parity")
        raw = raw_findings(project, FlowParityRule())
        assert any("plan_quiet_batch" in f.message for f in raw)
        assert any("CKernel.perf" in f.message for f in raw)
        kept = run_rules(project, [FlowParityRule()])
        assert not any("plan_quiet_batch" in f.message for f in kept)
        assert not any("CKernel.perf" in f.message for f in kept)


class TestFlowContext:
    def test_call_graph_and_taint_are_cached_per_project(self):
        project = load_fixture("determinism")
        ctx = FlowContext.for_project(project)
        assert FlowContext.for_project(project) is ctx
        from repro.analysis.flow.determinism import DeterminismSinks
        first = ctx.taint_analysis(DeterminismSinks())
        assert ctx.taint_analysis(DeterminismSinks()) is first

    def test_flow_rules_order_is_stable(self):
        ids = [r.rule_id for r in flow_rules()]
        assert ids == ["flow-determinism", "flow-transport", "flow-parity"]
