"""Unit tests for the exact DCM reference solver (order-aware DP)."""

import pytest

from repro.core.algorithm1 import plan_algorithm1
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.exact_dcm import optimality_gap, solve_dcm_exact
from repro.core.tour import validate_tour_feasibility
from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.radio.link import RadioModel
from repro.utils.errors import InvalidParameterError

#: Geometry chosen so the δ=100 grid over a 300 m square yields at most
#: 9 candidate sites — always within the exact solver's limit.
EXACT_DELTA = 100.0


@pytest.fixture
def exact_gen():
    return NetworkGenerator(Region.square(300.0), volume_range=(50.0, 500.0))


@pytest.fixture
def exact_radio():
    # R0 = 100 m >= delta, so Algorithm 1 is applicable too.
    return RadioModel(bandwidth=150.0, transmission_range=100.0, altitude=0.0)


@pytest.fixture
def exact_energy():
    # Binds on these instances (tours ~600-900 m, hover up to ~30 s).
    return EnergyModel(capacity=8e3, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


class TestExactSolver:
    def test_optimal_tour_is_feasible(self, exact_gen, exact_radio,
                                      exact_energy):
        net = exact_gen.uniform(6, seed=21)
        res = solve_dcm_exact(net, exact_energy, exact_radio,
                              delta=EXACT_DELTA)
        report = validate_tour_feasibility(res.tour, radio=exact_radio)
        assert report.feasible
        assert res.optimal_volume == pytest.approx(
            res.tour.collected_volume)

    def test_simulator_confirms_optimal_tour(self, exact_gen, exact_radio,
                                             exact_energy):
        from repro.sim.validate import cross_validate
        net = exact_gen.uniform(6, seed=22)
        res = solve_dcm_exact(net, exact_energy, exact_radio,
                              delta=EXACT_DELTA)
        assert cross_validate(res.tour, exact_radio).ok

    def test_roomy_budget_collects_everything(self, exact_gen, exact_radio):
        net = exact_gen.uniform(6, seed=23)
        roomy = EnergyModel(capacity=1e6, hover_power=150.0,
                            travel_power=100.0, speed=10.0)
        res = solve_dcm_exact(net, roomy, exact_radio, delta=EXACT_DELTA)
        assert res.optimal_volume == pytest.approx(net.total_volume)

    def test_zero_budget_collects_nothing(self, exact_gen, exact_radio):
        net = exact_gen.uniform(6, seed=24)
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        res = solve_dcm_exact(net, tiny, exact_radio, delta=EXACT_DELTA)
        assert res.optimal_volume == 0.0
        assert len(res.tour.points) == 1

    def test_site_limit_enforced(self, radio, energy, generator):
        net = generator.uniform(30, seed=0)
        with pytest.raises(InvalidParameterError):
            solve_dcm_exact(net, energy, radio, delta=15.0)

    def test_sensor_limit_enforced(self, exact_radio, exact_energy):
        gen = NetworkGenerator(Region.square(300.0))
        net = gen.uniform(63, seed=0)
        with pytest.raises(InvalidParameterError):
            solve_dcm_exact(net, exact_energy, exact_radio,
                            delta=EXACT_DELTA)

    def test_monotone_in_budget(self, exact_gen, exact_radio):
        net = exact_gen.uniform(6, seed=25)
        vols = []
        for cap in (2e3, 5e3, 1e4, 1e5):
            e = EnergyModel(capacity=cap, hover_power=150.0,
                            travel_power=100.0, speed=10.0)
            vols.append(solve_dcm_exact(net, e, exact_radio,
                                        delta=EXACT_DELTA).optimal_volume)
        assert all(b >= a - 1e-9 for a, b in zip(vols, vols[1:]))

    def test_order_aware_hover_accounting(self, exact_radio, exact_energy):
        # Two sites covering one shared big sensor: the optimal tour must
        # charge its upload time only once (at the first site).
        from repro.network.sensor_network import SensorNetwork
        net = SensorNetwork(
            positions=[[100.0, 150.0], [200.0, 150.0], [150.0, 150.0]],
            volumes=[300.0, 300.0, 450.0],  # big shared sensor in the middle
            depot=[150.0, 0.0], region=Region.square(300.0))
        res = solve_dcm_exact(net, exact_energy, exact_radio,
                              delta=EXACT_DELTA)
        # Total hover must not exceed one full drain of each sensor.
        max_hover = (net.volumes / exact_radio.bandwidth).sum()
        assert res.tour.hover_time <= max_hover + 1e-9


class TestHeuristicsAgainstOptimal:
    @pytest.mark.parametrize("seed", range(5))
    def test_algorithm2_never_exceeds_optimal(self, exact_gen, exact_radio,
                                              exact_energy, seed):
        net = exact_gen.uniform(6, seed=100 + seed)
        opt = solve_dcm_exact(net, exact_energy, exact_radio,
                              delta=EXACT_DELTA)
        tour = plan_algorithm2(net, exact_energy, exact_radio, EXACT_DELTA)
        assert tour.collected_volume <= opt.optimal_volume + 1e-6

    @pytest.mark.parametrize("seed", range(5))
    def test_algorithm2_near_optimal_on_small(self, exact_gen, exact_radio,
                                              exact_energy, seed):
        # Measured quality floor on these instances (usually optimal).
        net = exact_gen.uniform(6, seed=200 + seed)
        opt = solve_dcm_exact(net, exact_energy, exact_radio,
                              delta=EXACT_DELTA)
        tour = plan_algorithm2(net, exact_energy, exact_radio, EXACT_DELTA)
        assert optimality_gap(tour.collected_volume,
                              opt.optimal_volume) >= 0.75

    def test_algorithm1_ignore_mode_near_optimal(self, exact_gen,
                                                 exact_radio, exact_energy):
        net = exact_gen.uniform(6, seed=300)
        opt = solve_dcm_exact(net, exact_energy, exact_radio,
                              delta=EXACT_DELTA)
        tour = plan_algorithm1(net, exact_energy, exact_radio, EXACT_DELTA,
                               overlap="ignore", seed=0, n_restarts=4)
        assert optimality_gap(tour.collected_volume,
                              opt.optimal_volume) >= 0.70

    def test_algorithm3_bounded_by_storage_not_dcm_optimum(
            self, exact_gen, exact_radio, exact_energy):
        # Partial collection may legitimately exceed the *full*-collection
        # optimum, but never the stored total.
        net = exact_gen.uniform(6, seed=400)
        tour = plan_algorithm3(net, exact_energy, exact_radio,
                               EXACT_DELTA, K=4)
        assert tour.collected_volume <= net.total_volume + 1e-6


class TestOptimalityGapHelper:
    def test_perfect(self):
        assert optimality_gap(10.0, 10.0) == 1.0

    def test_half(self):
        assert optimality_gap(5.0, 10.0) == 0.5

    def test_zero_optimum_zero_heuristic(self):
        assert optimality_gap(0.0, 0.0) == 1.0

    def test_zero_optimum_positive_heuristic_flags(self):
        assert optimality_gap(1.0, 0.0) == float("inf")
