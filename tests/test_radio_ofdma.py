"""Unit tests for repro.radio.ofdma."""

import pytest

from repro.radio.ofdma import OFDMAScheduler
from repro.utils.errors import InvalidParameterError


class TestAssignment:
    def test_distinct_channels(self):
        sched = OFDMAScheduler(8)
        a = sched.assign([3, 1, 7])
        channels = list(a.device_to_channel.values())
        assert len(set(channels)) == 3

    def test_all_devices_served_within_capacity(self):
        sched = OFDMAScheduler(4)
        a = sched.assign([0, 1, 2, 3])
        assert a.n_assigned == 4 and not a.dropped

    def test_empty_hover(self):
        sched = OFDMAScheduler(4)
        a = sched.assign([])
        assert a.n_assigned == 0

    def test_hover_index_increments(self):
        sched = OFDMAScheduler(4)
        assert sched.assign([0]).hover_index == 0
        assert sched.assign([1]).hover_index == 1

    def test_duplicates_rejected(self):
        with pytest.raises(InvalidParameterError):
            OFDMAScheduler(4).assign([1, 1])

    def test_strict_overflow_raises(self):
        sched = OFDMAScheduler(2, strict=True)
        with pytest.raises(InvalidParameterError):
            sched.assign([0, 1, 2])

    def test_non_strict_overflow_drops_highest_indices(self):
        sched = OFDMAScheduler(2, strict=False)
        a = sched.assign([5, 1, 9])
        assert sorted(a.device_to_channel) == [1, 5]
        assert a.dropped == [9]

    def test_channel_count_minimum(self):
        with pytest.raises(InvalidParameterError):
            OFDMAScheduler(0)


class TestConcurrencyTracking:
    def test_max_concurrency(self):
        sched = OFDMAScheduler(16)
        sched.assign([0, 1])
        sched.assign([2, 3, 4, 5])
        sched.assign([6])
        assert sched.max_concurrency == 4

    def test_max_concurrency_empty(self):
        assert OFDMAScheduler(4).max_concurrency == 0

    def test_assignments_are_copies(self):
        sched = OFDMAScheduler(4)
        sched.assign([0])
        log = sched.assignments
        log.clear()
        assert len(sched.assignments) == 1
