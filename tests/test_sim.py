"""Unit tests for repro.sim (simulator, trace, cross-validation)."""

import numpy as np
import pytest

from repro.core.algorithm2 import plan_algorithm2
from repro.core.tour import CollectionTour
from repro.sim.simulator import simulate_mission
from repro.sim.validate import cross_validate
from repro.utils.errors import InfeasibleTourError


@pytest.fixture
def planned(small_net, radio, energy):
    return plan_algorithm2(small_net, energy, radio, delta=25.0)


class TestSimulator:
    def test_trace_matches_planner_energy(self, planned, radio):
        trace = simulate_mission(planned, radio)
        assert trace.total_energy == pytest.approx(planned.total_energy)

    def test_trace_matches_planner_volume(self, planned, radio):
        trace = simulate_mission(planned, radio)
        assert trace.collected_volume >= planned.collected_volume - 1e-6

    def test_events_chronological(self, planned, radio):
        trace = simulate_mission(planned, radio)
        times = [(e.start_time, e.end_time) for e in trace.events]
        for (s, e), (s2, e2) in zip(times, times[1:]):
            assert e <= s2 + 1e-9
            assert s <= e

    def test_legs_close_the_tour(self, planned, radio):
        trace = simulate_mission(planned, radio)
        legs = trace.flight_legs
        # First leg leaves the depot, last leg returns to it.
        np.testing.assert_allclose(legs[0].origin, planned.points[0])
        np.testing.assert_allclose(legs[-1].destination, planned.points[0])

    def test_leg_chain_is_continuous(self, planned, radio):
        trace = simulate_mission(planned, radio)
        legs = trace.flight_legs
        for a, b in zip(legs, legs[1:]):
            np.testing.assert_allclose(a.destination, b.origin)

    def test_total_travel_matches_tour_length(self, planned, radio):
        trace = simulate_mission(planned, radio)
        travel = sum(leg.distance for leg in trace.flight_legs)
        assert travel == pytest.approx(planned.travel_distance)

    def test_hover_count(self, planned, radio):
        trace = simulate_mission(planned, radio)
        assert len(trace.hovers) == planned.n_hovers

    def test_uploads_respect_bandwidth(self, planned, radio):
        trace = simulate_mission(planned, radio)
        for h in trace.hovers:
            for v, mb in h.uploads.items():
                assert mb <= radio.bandwidth * h.duration + 1e-9

    def test_no_sensor_over_drained(self, planned, radio, small_net):
        trace = simulate_mission(planned, radio)
        assert (trace.collected <= small_net.volumes + 1e-9).all()

    def test_strict_energy_raises_on_overdraw(self, small_net, radio):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=10.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        # A tour claiming a long flight on a 10 J battery.
        far = CollectionTour(
            points=np.vstack([small_net.depot,
                              small_net.depot + [100.0, 0.0]]),
            sojourns=np.array([0.0, 0.0]),
            collected=np.zeros(small_net.n_nodes),
            network=small_net, energy=tiny)
        with pytest.raises(InfeasibleTourError):
            simulate_mission(far, radio, strict_energy=True)
        trace = simulate_mission(far, radio, strict_energy=False)
        assert trace.ledger.overdrawn

    def test_summary_mentions_key_numbers(self, planned, radio):
        trace = simulate_mission(planned, radio)
        text = trace.summary()
        assert "collected" in text and "energy" in text

    def test_ofdma_concurrency_reported(self, planned, radio):
        trace = simulate_mission(planned, radio)
        assert trace.ofdma_max_concurrency >= 1

    def test_depot_only_tour(self, small_net, radio, energy):
        t = CollectionTour(points=small_net.depot[None, :],
                           sojourns=np.array([0.0]),
                           collected=np.zeros(small_net.n_nodes),
                           network=small_net, energy=energy)
        trace = simulate_mission(t, radio)
        assert trace.total_energy == 0.0
        assert not trace.events


class TestCrossValidate:
    def test_ok_for_planner_output(self, planned, radio):
        report = cross_validate(planned, radio)
        assert report.ok
        assert report.simulated_volume >= report.claimed_volume - 1e-6

    def test_detects_overclaim(self, planned, radio, small_net):
        inflated = planned.collected.copy()
        # Claim an uncollected sensor without hovering near it.
        untouched = np.flatnonzero(planned.collected == 0)
        if len(untouched) == 0:
            pytest.skip("tour collected everything; cannot inflate")
        v = int(untouched[0])
        inflated[v] = small_net.volumes[v]
        bad = CollectionTour(points=planned.points,
                             sojourns=planned.sojourns,
                             collected=inflated,
                             network=small_net, energy=planned.energy)
        with pytest.raises(InfeasibleTourError):
            cross_validate(bad, radio)
        report = cross_validate(bad, radio, strict=False)
        assert not report.ok

    def test_report_carries_trace(self, planned, radio):
        report = cross_validate(planned, radio)
        assert report.trace.total_energy == pytest.approx(
            report.simulated_energy)
