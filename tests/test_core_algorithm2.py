"""Unit tests for repro.core.algorithm2 (greedy max-ratio heuristic)."""

import numpy as np
import pytest

from repro.core.algorithm2 import plan_algorithm2
from repro.core.benchmark_alg import plan_benchmark
from repro.core.tour import validate_tour_feasibility
from repro.utils.errors import InvalidParameterError


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_on_random_nets(self, generator, radio, energy, seed):
        net = generator.uniform(18, seed=seed)
        tour = plan_algorithm2(net, energy, radio, delta=25.0)
        assert validate_tour_feasibility(tour, radio=radio).feasible

    def test_depot_first(self, small_net, radio, energy):
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0)
        np.testing.assert_allclose(tour.points[0], small_net.depot)

    def test_tiny_budget_depot_only(self, small_net, radio):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        tour = plan_algorithm2(small_net, tiny, radio, delta=25.0)
        assert tour.collected_volume == 0.0
        assert len(tour.points) == 1

    def test_huge_budget_collects_everything(self, small_net, radio,
                                             roomy_energy):
        tour = plan_algorithm2(small_net, roomy_energy, radio, delta=25.0)
        assert tour.collected_volume == pytest.approx(small_net.total_volume)

    def test_empty_network(self, generator, radio, energy):
        net = generator.uniform(0, seed=0)
        tour = plan_algorithm2(net, energy, radio, delta=25.0)
        assert tour.collected_volume == 0.0


class TestSemantics:
    def test_full_collection_per_visited_sensor(self, small_net, radio,
                                                roomy_energy):
        # DCM collects each covered sensor fully or not at all.
        tour = plan_algorithm2(small_net, roomy_energy, radio, delta=25.0)
        for v in range(small_net.n_nodes):
            c = tour.collected[v]
            assert c == pytest.approx(0.0) or c == pytest.approx(
                small_net.volumes[v])

    def test_sojourn_covers_max_upload(self, small_net, radio, energy):
        # Every hover must last at least the max upload time among sensors
        # it is responsible for (else cross_validate would fail).
        from repro.sim.validate import cross_validate
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0)
        assert cross_validate(tour, radio).ok

    def test_no_repeated_hover_points(self, small_net, radio, energy):
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0)
        unique = np.unique(tour.points, axis=0)
        assert len(unique) == len(tour.points)

    def test_monotone_in_budget(self, small_net, radio):
        from repro.energy.model import EnergyModel
        volumes = []
        for cap in (5e3, 1e4, 2e4, 4e4):
            e = EnergyModel(capacity=cap, hover_power=150.0,
                            travel_power=100.0, speed=10.0)
            volumes.append(plan_algorithm2(small_net, e, radio,
                                           delta=25.0).collected_volume)
        assert all(b >= a - 1e-6 for a, b in zip(volumes, volumes[1:]))


class TestModes:
    def test_christofides_mode_feasible(self, tiny_net, radio, energy):
        tour = plan_algorithm2(tiny_net, energy, radio, delta=40.0,
                               tsp_mode="christofides")
        assert validate_tour_feasibility(tour, radio=radio).feasible
        assert tour.meta["tsp_mode"] == "christofides"

    def test_modes_agree_on_tiny(self, tiny_net, radio, roomy_energy):
        a = plan_algorithm2(tiny_net, roomy_energy, radio, delta=40.0,
                            tsp_mode="insertion")
        b = plan_algorithm2(tiny_net, roomy_energy, radio, delta=40.0,
                            tsp_mode="christofides")
        # Both collect everything with a roomy budget.
        assert a.collected_volume == pytest.approx(b.collected_volume)

    def test_polish_never_hurts(self, generator, radio, energy):
        net = generator.uniform(20, seed=5)
        raw = plan_algorithm2(net, energy, radio, delta=25.0, polish=False)
        polished = plan_algorithm2(net, energy, radio, delta=25.0, polish=True)
        assert polished.collected_volume >= raw.collected_volume - 1e-6

    def test_unknown_mode_rejected(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError):
            plan_algorithm2(small_net, energy, radio, delta=25.0,
                            tsp_mode="quantum")

    def test_prebuilt_sites_used(self, small_net, radio, energy):
        from repro.core.hovering import build_hovering_sites
        sites = build_hovering_sites(small_net, radio, 25.0)
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0,
                               sites=sites)
        assert tour.meta["n_candidates"] == sites.n_sites


class TestQuality:
    @pytest.mark.parametrize("seed", range(3))
    def test_beats_benchmark(self, generator, radio, energy, seed):
        net = generator.uniform(20, seed=100 + seed)
        alg2 = plan_algorithm2(net, energy, radio, delta=20.0)
        bench = plan_benchmark(net, energy, radio)
        assert alg2.collected_volume >= bench.collected_volume - 1e-6

    def test_meta_fields(self, small_net, radio, energy):
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0)
        assert tour.method == "algorithm2"
        assert tour.meta["iterations"] >= 1
        assert tour.meta["n_visited"] == len(tour.points) - 1
