"""Unit tests for repro.tsp.christofides."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.tsp.christofides import christofides_tour
from repro.tsp.exact import held_karp
from repro.tsp.length import tour_length_matrix, validate_tour
from repro.utils.errors import InvalidParameterError


class TestBasics:
    def test_is_permutation(self, rng):
        dist = pairwise_distances(rng.uniform(0, 100, (12, 2)))
        tour = christofides_tour(dist)
        validate_tour(tour, 12)
        assert len(tour) == 12

    def test_starts_at_start(self, rng):
        dist = pairwise_distances(rng.uniform(0, 100, (8, 2)))
        assert christofides_tour(dist, start=5)[0] == 5

    def test_single_node(self):
        tour = christofides_tour(np.zeros((1, 1)))
        np.testing.assert_array_equal(tour, [0])

    def test_two_nodes(self, rng):
        dist = pairwise_distances(rng.uniform(0, 10, (2, 2)))
        np.testing.assert_array_equal(christofides_tour(dist), [0, 1])

    def test_three_nodes(self, rng):
        dist = pairwise_distances(rng.uniform(0, 10, (3, 2)))
        tour = christofides_tour(dist)
        assert sorted(tour) == [0, 1, 2]

    def test_subset(self, rng):
        dist = pairwise_distances(rng.uniform(0, 100, (10, 2)))
        tour = christofides_tour(dist, start=2, nodes=np.array([2, 4, 6, 8]))
        assert sorted(tour) == [2, 4, 6, 8]
        assert tour[0] == 2


class TestErrorHandling:
    def test_asymmetric_rejected(self):
        d = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            christofides_tour(d)

    def test_negative_rejected(self):
        d = np.array([[0.0, -1.0], [-1.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            christofides_tour(d)

    def test_start_outside_subset_rejected(self, rng):
        dist = pairwise_distances(rng.uniform(0, 10, (5, 2)))
        with pytest.raises(InvalidParameterError):
            christofides_tour(dist, start=0, nodes=np.array([1, 2]))

    def test_duplicate_nodes_rejected(self, rng):
        dist = pairwise_distances(rng.uniform(0, 10, (5, 2)))
        with pytest.raises(InvalidParameterError):
            christofides_tour(dist, start=1, nodes=np.array([1, 1, 2]))

    def test_nonfinite_rejected(self):
        d = np.array([[0.0, np.inf], [np.inf, 0.0]])
        with pytest.raises(InvalidParameterError):
            christofides_tour(d)


class TestApproximationGuarantee:
    @pytest.mark.parametrize("seed", range(8))
    def test_within_1_5_of_optimal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 11))
        dist = pairwise_distances(rng.uniform(0, 100, (n, 2)))
        _, opt = held_karp(dist)
        ch_len = tour_length_matrix(christofides_tour(dist), dist)
        assert ch_len <= 1.5 * opt + 1e-9

    def test_collinear_points(self):
        # Degenerate metric: points on a line; optimal tour is out-and-back.
        pts = np.array([[float(i), 0.0] for i in range(6)])
        dist = pairwise_distances(pts)
        ch_len = tour_length_matrix(christofides_tour(dist), dist)
        assert ch_len <= 1.5 * 10.0 + 1e-9

    def test_duplicate_points(self):
        # Zero-distance pairs must not break the matching stage.
        pts = np.array([[0, 0], [0, 0], [3, 0], [3, 0], [0, 4]], dtype=float)
        dist = pairwise_distances(pts)
        tour = christofides_tour(dist)
        validate_tour(tour, 5)
        assert len(tour) == 5
