"""Unit tests for repro.orienteering.problem."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.orienteering.problem import OrienteeringInstance, make_solution
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def instance(rng):
    pts = rng.uniform(0, 100, (8, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, 8)
    awards[0] = 0.0
    return OrienteeringInstance(costs=costs, awards=awards,
                                budget=300.0, depot=0)


class TestConstruction:
    def test_basic(self, instance):
        assert instance.n_nodes == 8

    def test_rejects_asymmetric_costs(self):
        costs = np.array([[0.0, 1.0], [2.0, 0.0]])
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=[0, 1], budget=10.0)

    def test_rejects_negative_awards(self, rng):
        costs = pairwise_distances(rng.uniform(0, 10, (3, 2)))
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=[0, -1, 2], budget=10.0)

    def test_rejects_award_shape_mismatch(self, rng):
        costs = pairwise_distances(rng.uniform(0, 10, (3, 2)))
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=[0, 1], budget=10.0)

    def test_rejects_bad_depot(self, rng):
        costs = pairwise_distances(rng.uniform(0, 10, (3, 2)))
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=[0, 1, 2],
                                 budget=10.0, depot=3)

    def test_rejects_negative_budget(self, rng):
        costs = pairwise_distances(rng.uniform(0, 10, (3, 2)))
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=[0, 1, 2], budget=-1.0)

    def test_conflict_group_index_validated(self, rng):
        costs = pairwise_distances(rng.uniform(0, 10, (3, 2)))
        with pytest.raises(InvalidParameterError):
            OrienteeringInstance(costs=costs, awards=[0, 1, 2], budget=10.0,
                                 conflict_groups=[np.array([1, 9])])


class TestEvaluation:
    def test_tour_cost(self, instance):
        tour = [0, 3, 5]
        expected = (instance.costs[0, 3] + instance.costs[3, 5]
                    + instance.costs[5, 0])
        assert instance.tour_cost(tour) == pytest.approx(expected)

    def test_tour_award(self, instance):
        tour = [0, 3, 5]
        assert instance.tour_award(tour) == pytest.approx(
            instance.awards[3] + instance.awards[5])

    def test_empty_tour_zero(self, instance):
        assert instance.tour_award([]) == 0.0
        assert instance.tour_cost([]) == 0.0


class TestFeasibility:
    def test_depot_only_feasible(self, instance):
        assert instance.is_feasible([0])

    def test_must_start_at_depot(self, instance):
        assert not instance.is_feasible([1, 0])

    def test_budget_enforced(self, instance):
        tight = OrienteeringInstance(costs=instance.costs,
                                     awards=instance.awards,
                                     budget=1e-6, depot=0)
        assert not tight.is_feasible([0, 1])

    def test_empty_tour_infeasible(self, instance):
        assert not instance.is_feasible([])

    def test_duplicate_node_raises(self, instance):
        with pytest.raises(InvalidParameterError):
            instance.is_feasible([0, 1, 1])


class TestConflicts:
    @pytest.fixture
    def conflicted(self, rng):
        pts = rng.uniform(0, 100, (6, 2))
        return OrienteeringInstance(
            costs=pairwise_distances(pts),
            awards=[0.0, 1, 2, 3, 4, 5],
            budget=1e6, depot=0,
            conflict_groups=[np.array([1, 2]), np.array([3, 4, 5])])

    def test_single_member_ok(self, conflicted):
        assert conflicted.conflicts_ok([0, 1, 3])

    def test_two_from_pair_violates(self, conflicted):
        assert not conflicted.conflicts_ok([0, 1, 2])

    def test_two_from_triple_violates(self, conflicted):
        assert not conflicted.conflicts_ok([0, 4, 5])

    def test_node_conflicts_with(self, conflicted):
        assert conflicted.node_conflicts_with(2, [0, 1])
        assert not conflicted.node_conflicts_with(3, [0, 1])

    def test_is_feasible_includes_conflicts(self, conflicted):
        assert not conflicted.is_feasible([0, 1, 2])

    def test_no_groups_always_ok(self, instance):
        assert instance.conflicts_ok([0, 1, 2, 3])
        assert not instance.node_conflicts_with(4, [0, 1])


class TestSolutionRecord:
    def test_make_solution_computes_metrics(self, instance):
        sol = make_solution(instance, [0, 2, 4], "test")
        assert sol.award == pytest.approx(instance.tour_award([0, 2, 4]))
        assert sol.cost == pytest.approx(instance.tour_cost([0, 2, 4]))
        assert sol.method == "test"
        assert sol.n_visited == 3

    def test_solution_tour_is_array(self, instance):
        sol = make_solution(instance, [0, 1], "t")
        assert isinstance(sol.tour, np.ndarray)
