"""Property-based tests (hypothesis) for core data structures and invariants.

These cover the claims the paper proves analytically:

* Lemma 1 — the auxiliary graph ``G_s`` is metric,
* Eq. 4 monotonicity — partial awards grow with the sojourn fraction,
* tour-energy decomposition — w2 edge sums equal hover + travel energy,
* conservation through forwarding,
* geometric invariants of the grid/coverage substrates,
* Christofides validity on arbitrary point sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.auxgraph import build_auxiliary_graph
from repro.core.hovering import build_hovering_sites
from repro.energy.model import EnergyModel
from repro.geometry.coverage import coverage_matrix, coverage_sets_bruteforce
from repro.geometry.distance import pairwise_distances, tour_length
from repro.geometry.grid import GridPartition
from repro.geometry.region import Region
from repro.network.forwarding import aggregate_volumes, assign_forwarding
from repro.network.sensor_network import SensorNetwork
from repro.radio.link import RadioModel
from repro.tsp.christofides import christofides_tour
from repro.tsp.improve import or_opt, two_opt
from repro.tsp.length import tour_length_matrix, validate_tour

# ---------------------------------------------------------------------- #
# Strategies
# ---------------------------------------------------------------------- #
coords = st.floats(min_value=0.0, max_value=500.0,
                   allow_nan=False, allow_infinity=False)


def points_strategy(min_n=3, max_n=12):
    return arrays(np.float64, st.tuples(st.integers(min_n, max_n),
                                        st.just(2)),
                  elements=coords)


volumes_elem = st.floats(min_value=0.0, max_value=1000.0,
                         allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------- #
# Geometry invariants
# ---------------------------------------------------------------------- #
class TestGeometryProperties:
    @given(points_strategy())
    @settings(max_examples=50, deadline=None)
    def test_pairwise_metric(self, pts):
        d = pairwise_distances(pts)
        assert (d >= 0).all()
        assert np.allclose(d, d.T)
        n = len(pts)
        # Triangle inequality on every triple.
        for i in range(n):
            lhs = d[i][None, :]                    # d(i, k)
            rhs = d[i][:, None] + d                # d(i, j) + d(j, k)
            assert (lhs <= rhs + 1e-6).all()

    @given(points_strategy(), st.floats(min_value=5.0, max_value=200.0))
    @settings(max_examples=50, deadline=None)
    def test_coverage_matrix_matches_bruteforce(self, pts, radius):
        cands, sensors = pts[: len(pts) // 2 + 1], pts[len(pts) // 2:]
        mat = coverage_matrix(cands, sensors, radius)
        ref = coverage_sets_bruteforce(cands, sensors, radius)
        for row, r in zip(mat, ref):
            np.testing.assert_array_equal(np.flatnonzero(row), r)

    @given(st.floats(min_value=1.0, max_value=120.0),
           points_strategy(min_n=1, max_n=8))
    @settings(max_examples=50, deadline=None)
    def test_grid_flat_index_roundtrip(self, delta, pts):
        grid = GridPartition(Region.square(500.0), delta)
        idx = grid.flat_index(pts)
        centers = grid.center_of(idx)
        # A point is within half a square diagonal of its square's centre
        # (points inside the region; strategy guarantees that).
        half_diag = delta * np.sqrt(2) / 2
        d = np.linalg.norm(centers - np.atleast_2d(pts), axis=1)
        assert (d <= half_diag + 1e-6).all()

    @given(points_strategy(min_n=2, max_n=10))
    @settings(max_examples=50, deadline=None)
    def test_tour_length_rotation_reversal_invariant(self, pts):
        base = tour_length(pts)
        assert tour_length(np.roll(pts, 3, axis=0)) == pytest.approx(
            base, abs=1e-6)
        assert tour_length(pts[::-1]) == pytest.approx(base, abs=1e-6)


# ---------------------------------------------------------------------- #
# TSP invariants
# ---------------------------------------------------------------------- #
class TestTspProperties:
    @given(points_strategy(min_n=3, max_n=11))
    @settings(max_examples=30, deadline=None)
    def test_christofides_valid_permutation(self, pts):
        d = pairwise_distances(pts)
        tour = christofides_tour(d)
        validate_tour(tour, len(pts))
        assert len(tour) == len(pts)
        assert tour[0] == 0

    @given(points_strategy(min_n=4, max_n=11), st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_local_search_never_lengthens(self, pts, seed):
        d = pairwise_distances(pts)
        rng = np.random.default_rng(seed)
        tour = rng.permutation(len(pts))
        base = tour_length_matrix(tour, d)
        assert tour_length_matrix(two_opt(tour, d), d) <= base + 1e-6
        assert tour_length_matrix(or_opt(tour, d), d) <= base + 1e-6


# ---------------------------------------------------------------------- #
# Paper-specific invariants
# ---------------------------------------------------------------------- #
def _make_network(pts, volumes):
    return SensorNetwork(positions=pts, volumes=volumes[: len(pts)],
                         depot=[250.0, 250.0],
                         region=Region.square(500.0))


class TestAuxGraphProperties:
    @given(points_strategy(min_n=2, max_n=8),
           arrays(np.float64, st.integers(12, 12), elements=volumes_elem),
           st.floats(min_value=20.0, max_value=60.0))
    @settings(max_examples=30, deadline=None)
    def test_lemma1_metricity(self, pts, volumes, delta):
        net = _make_network(pts, volumes)
        radio = RadioModel(bandwidth=150.0, transmission_range=60.0,
                           altitude=0.0)
        energy = EnergyModel(capacity=1e5, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        sites = build_hovering_sites(net, radio, delta)
        graph = build_auxiliary_graph(sites, energy)
        c = graph.costs
        n = graph.n_nodes
        # Exhaustive triangle check (n is small under this strategy).
        for j in range(n):
            lhs = c                                  # c(i, k)
            rhs = c[:, j][:, None] + c[j, :][None, :]
            assert (lhs <= rhs + 1e-6).all()

    @given(points_strategy(min_n=2, max_n=8),
           arrays(np.float64, st.integers(12, 12), elements=volumes_elem))
    @settings(max_examples=30, deadline=None)
    def test_tour_energy_decomposition(self, pts, volumes):
        net = _make_network(pts, volumes)
        radio = RadioModel(bandwidth=150.0, transmission_range=60.0,
                           altitude=0.0)
        energy = EnergyModel(capacity=1e5, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        sites = build_hovering_sites(net, radio, 40.0)
        graph = build_auxiliary_graph(sites, energy)
        if graph.n_nodes < 3:
            return
        tour = np.arange(min(graph.n_nodes, 5))
        edge_sum = graph.tour_energy(tour)
        hover = graph.hover_energies[tour].sum()
        travel = tour_length(graph.points[tour]) * energy.travel_cost_per_meter
        assert edge_sum == pytest.approx(hover + travel, rel=1e-9, abs=1e-6)


class TestPartialAwardProperties:
    @given(arrays(np.float64, st.integers(1, 10), elements=volumes_elem),
           st.integers(min_value=1, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_eq4_monotone_in_k(self, volumes, K):
        # P(s_{j,1}) <= P(s_{j,2}) <= ... <= P(s_{j,K}) = full award.
        bandwidth = 150.0
        t_full = volumes.max() / bandwidth if len(volumes) else 0.0
        awards = []
        for k in range(1, K + 1):
            tau = k * t_full / K
            awards.append(np.minimum(volumes, bandwidth * tau).sum())
        for a, b in zip(awards, awards[1:]):
            assert b >= a - 1e-9
        assert awards[-1] == pytest.approx(volumes.sum(), rel=1e-9, abs=1e-9)


class TestForwardingProperties:
    @given(points_strategy(min_n=1, max_n=8),
           points_strategy(min_n=1, max_n=8),
           st.floats(min_value=10.0, max_value=400.0))
    @settings(max_examples=50, deadline=None)
    def test_conservation(self, aggregates, devices, comm_range):
        rng = np.random.default_rng(0)
        own = rng.uniform(0, 100, len(aggregates))
        dev = rng.uniform(0, 100, len(devices))
        assignment = assign_forwarding(devices, aggregates, comm_range)
        total = aggregate_volumes(own, dev, assignment,
                                  n_aggregates=len(aggregates))
        reachable = dev[assignment >= 0].sum()
        assert total.sum() == pytest.approx(own.sum() + reachable, rel=1e-9)
        assert (total >= own - 1e-9).all()

    @given(points_strategy(min_n=1, max_n=8),
           points_strategy(min_n=1, max_n=8))
    @settings(max_examples=50, deadline=None)
    def test_nearest_assignment_in_range(self, aggregates, devices):
        comm_range = 120.0
        assignment = assign_forwarding(devices, aggregates, comm_range)
        for i, a in enumerate(assignment):
            if a >= 0:
                d = np.linalg.norm(np.atleast_2d(devices)[i]
                                   - np.atleast_2d(aggregates)[a])
                assert d <= comm_range + 1e-9
