"""Unit tests for repro.experiments.stats."""

import numpy as np
import pytest

from repro.experiments.runner import SweepRow
from repro.experiments.stats import (
    mean_confidence_interval,
    paired_comparison,
    row_confidence_interval,
)
from repro.utils.errors import InvalidParameterError


class TestMeanCI:
    def test_contains_mean(self):
        mean, lo, hi = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
        assert lo <= mean <= hi
        assert mean == 2.5

    def test_single_sample_degenerate(self):
        mean, lo, hi = mean_confidence_interval([7.0])
        assert mean == lo == hi == 7.0

    def test_zero_variance_degenerate(self):
        mean, lo, hi = mean_confidence_interval([3.0, 3.0, 3.0])
        assert lo == pytest.approx(hi) == pytest.approx(3.0)

    def test_wider_at_higher_confidence(self):
        data = [1.0, 2.0, 4.0, 8.0, 3.0]
        _, lo95, hi95 = mean_confidence_interval(data, 0.95)
        _, lo99, hi99 = mean_confidence_interval(data, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_coverage_simulation(self):
        # ~95 % of intervals should contain the true mean.
        rng = np.random.default_rng(0)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(10.0, 2.0, size=12)
            _, lo, hi = mean_confidence_interval(sample, 0.95)
            hits += lo <= 10.0 <= hi
        assert 0.90 <= hits / trials <= 0.99

    def test_empty_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(InvalidParameterError):
            mean_confidence_interval([1.0, 2.0], confidence=1.0)


class TestRowCI:
    def make_row(self, n=5, std=1.0):
        return SweepRow("capacity", 1e4, "A", mean_volume_gb=10.0,
                        std_volume_gb=std, mean_time_s=0.5,
                        std_time_s=0.1, n_instances=n)

    def test_volume_metric(self):
        mean, lo, hi = row_confidence_interval(self.make_row())
        assert lo < 10.0 < hi

    def test_time_metric(self):
        mean, lo, hi = row_confidence_interval(self.make_row(), metric="time")
        assert lo < 0.5 < hi

    def test_single_instance_degenerate(self):
        mean, lo, hi = row_confidence_interval(self.make_row(n=1))
        assert lo == hi == mean

    def test_more_instances_tighter(self):
        _, lo5, hi5 = row_confidence_interval(self.make_row(n=5))
        _, lo15, hi15 = row_confidence_interval(self.make_row(n=15))
        assert hi15 - lo15 < hi5 - lo5

    def test_unknown_metric_rejected(self):
        with pytest.raises(InvalidParameterError):
            row_confidence_interval(self.make_row(), metric="energy")


class TestPairedComparison:
    def test_clear_winner(self):
        a = [10.0, 11.0, 12.0, 10.5, 11.5]
        b = [8.0, 8.5, 9.0, 8.2, 8.8]
        cmp = paired_comparison(a, b)
        assert cmp.mean_diff > 0
        assert cmp.wins == 5 and cmp.losses == 0
        assert cmp.significant
        assert "significantly" in cmp.verdict("A", "B")
        assert cmp.verdict("A", "B").startswith("A")

    def test_ties_counted(self):
        cmp = paired_comparison([1.0, 2.0, 3.0], [1.0, 2.0, 2.0])
        assert cmp.ties == 2 and cmp.wins == 1

    def test_all_ties_p_one(self):
        cmp = paired_comparison([1.0, 1.0], [1.0, 1.0])
        assert cmp.p_sign == 1.0
        assert not cmp.significant

    def test_noisy_equal_not_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(10, 1, 20)
        b = a + rng.normal(0, 1, 20)  # same mean
        cmp = paired_comparison(a, b)
        assert not cmp.significant or abs(cmp.mean_diff) < 1.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            paired_comparison([1.0], [1.0, 2.0])

    def test_verdict_names_loser_direction(self):
        cmp = paired_comparison([1.0, 1.0, 1.0], [2.0, 2.0, 2.0])
        assert cmp.verdict("Alg", "Bench").startswith("Bench")


class TestOnRealSweep:
    def test_alg2_beats_benchmark_significantly(self):
        # Paired per-instance comparison on a real (tiny) sweep.
        from repro.core.algorithm2 import plan_algorithm2
        from repro.core.benchmark_alg import plan_benchmark
        from repro.experiments.config import reduced_settings
        from repro.experiments.instances import make_instances
        cfg = reduced_settings().scaled(n_nodes=40, n_instances=6,
                                        capacity=2.2e4, seed=9)
        radio = cfg.radio_model()
        energy = cfg.energy_model()
        a_vols, b_vols = [], []
        for net in make_instances(cfg):
            a_vols.append(plan_algorithm2(net, energy, radio,
                                          25.0).collected_volume)
            b_vols.append(plan_benchmark(net, energy,
                                         radio).collected_volume)
        cmp = paired_comparison(a_vols, b_vols)
        assert cmp.wins == 6 and cmp.significant
