"""Unit tests for repro.obs.tracer: spans, ring buffer, activation, env."""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.tracer import (
    DEFAULT_CAPACITY,
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Tracer,
    activated,
    get_tracer,
    install_from_env,
    set_tracer,
    span,
    walk_children,
)


class TestSpanRecording:
    def test_single_span_record_schema(self):
        tracer = Tracer()
        with tracer.span("mod.op", key=1):
            pass
        (rec,) = tracer.records()
        assert rec["name"] == "mod.op"
        assert rec["dur_s"] >= 0.0
        assert rec["ts_s"] >= 0.0
        assert rec["parent"] is None
        assert rec["depth"] == 0
        assert rec["attrs"] == {"key": 1}

    def test_nesting_builds_parent_links_and_depths(self):
        tracer = Tracer()
        with tracer.span("outer.op"):
            with tracer.span("inner.op"):
                with tracer.span("leaf.op"):
                    pass
            with tracer.span("inner.other"):
                pass
        by_name = {r["name"]: r for r in tracer.records()}
        outer, inner = by_name["outer.op"], by_name["inner.op"]
        assert outer["depth"] == 0 and outer["parent"] is None
        assert inner["depth"] == 1 and inner["parent"] == outer["id"]
        assert by_name["leaf.op"]["parent"] == inner["id"]
        assert by_name["inner.other"]["parent"] == outer["id"]
        # Completion order: children close before their parents.
        names = [r["name"] for r in tracer.records()]
        assert names.index("leaf.op") < names.index("inner.op")
        assert names.index("inner.other") < names.index("outer.op")

    def test_walk_children(self):
        tracer = Tracer()
        with tracer.span("root.op"):
            with tracer.span("a.op"):
                pass
            with tracer.span("b.op"):
                pass
        records = tracer.records()
        root = next(r for r in records if r["name"] == "root.op")
        kids = {r["name"] for r in walk_children(records, root["id"])}
        assert kids == {"a.op", "b.op"}
        roots = {r["name"] for r in walk_children(records, None)}
        assert roots == {"root.op"}

    def test_child_duration_bounded_by_parent(self):
        tracer = Tracer()
        with tracer.span("outer.op"):
            with tracer.span("inner.op"):
                sum(range(1000))
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["inner.op"]["dur_s"] <= by_name["outer.op"]["dur_s"]

    def test_set_attaches_attributes(self):
        tracer = Tracer()
        with tracer.span("mod.op") as s:
            s.set(found=3)
        (rec,) = tracer.records()
        assert rec["attrs"] == {"found": 3}

    def test_exception_still_records_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("mod.op"):
                raise ValueError("boom")
        assert len(tracer.records()) == 1

    def test_span_ids_unique_and_increasing(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("mod.op"):
                pass
        ids = [r["id"] for r in tracer.records()]
        assert ids == sorted(set(ids))


class TestRingBuffer:
    def test_capacity_bounds_retained_records(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span("mod.op", i=i):
                pass
        records = tracer.records()
        assert len(records) == 4
        assert [r["attrs"]["i"] for r in records] == [6, 7, 8, 9]
        assert tracer.dropped == 6

    def test_default_capacity(self):
        assert Tracer()._records.maxlen == DEFAULT_CAPACITY

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_clear(self):
        tracer = Tracer(capacity=2)
        for _ in range(3):
            with tracer.span("mod.op"):
                pass
        tracer.clear()
        assert tracer.records() == [] and tracer.dropped == 0


class TestNullTracer:
    def test_records_empty(self):
        assert NULL_TRACER.records() == []
        assert not NullTracer().enabled

    @given(st.text(min_size=1, max_size=30),
           st.dictionaries(st.text(min_size=1, max_size=8),
                           st.integers(), max_size=3))
    def test_disabled_span_never_allocates(self, name, attrs):
        # The disabled path must return the one shared no-op object for
        # any (name, attrs): identity, not equality — zero allocation.
        s = NULL_TRACER.span(name, **attrs)
        assert s is NULL_SPAN
        with s as entered:
            assert entered is NULL_SPAN
        assert s.set(extra=1) is NULL_SPAN

    def test_module_span_helper_uses_null_by_default(self):
        assert get_tracer() is NULL_TRACER
        assert span("anything.here", x=1) is NULL_SPAN


class TestActivation:
    def test_set_tracer_roundtrip(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
            with span("mod.op"):
                pass
            assert len(tracer.records()) == 1
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_activated_restores_on_exit(self):
        tracer = Tracer()
        with activated(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_activated_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with activated(tracer):
                raise RuntimeError("boom")
        assert get_tracer() is NULL_TRACER

    def test_activated_none_keeps_current(self):
        tracer = Tracer()
        with activated(tracer):
            with activated(None):
                assert get_tracer() is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_activated_nests(self):
        outer, inner = Tracer(), Tracer()
        with activated(outer):
            with activated(inner):
                with span("mod.op"):
                    pass
            with span("mod.other"):
                pass
        assert [r["name"] for r in inner.records()] == ["mod.op"]
        assert [r["name"] for r in outer.records()] == ["mod.other"]


class TestInstallFromEnv:
    def teardown_method(self):
        set_tracer(None)

    def test_disabled_values_leave_null(self):
        for value in ("", "0", "false", "no", "off", "FALSE", " Off "):
            assert install_from_env({"REPRO_TRACE": value}) is NULL_TRACER

    def test_missing_leaves_null(self):
        assert install_from_env({}) is NULL_TRACER

    def test_truthy_installs_tracer(self):
        tracer = install_from_env({"REPRO_TRACE": "1"})
        assert isinstance(tracer, Tracer)
        assert get_tracer() is tracer

    def test_env_trace_file_exports_at_exit(self, tmp_path):
        # Full subprocess round-trip: REPRO_TRACE enables tracing at
        # import, REPRO_TRACE_FILE triggers the atexit JSONL export.
        out = tmp_path / "env_trace.jsonl"
        code = (
            "import repro.obs\n"
            "from repro.obs.tracer import span\n"
            "with span('env.demo'):\n"
            "    pass\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            env={"REPRO_TRACE": "1", "REPRO_TRACE_FILE": str(out),
                 "PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=".", capture_output=True, text=True)
        assert proc.returncode == 0, proc.stderr
        from repro.obs.export import read_jsonl
        records = read_jsonl(out)
        assert [r["name"] for r in records] == ["env.demo"]
