"""Shared fixtures for the test suite.

Instances are deliberately small (tens of nodes) so the whole suite runs
in seconds; paper-scale behaviour is exercised by the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.radio.link import RadioModel


@pytest.fixture
def rng():
    """A deterministic generator for ad-hoc randomness in tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def region():
    """A 400 m x 400 m region — small enough for tight tours."""
    return Region.square(400.0)


@pytest.fixture
def radio():
    """Paper-like radio scaled to the test region: R0 = 50 m, B = 150 MB/s."""
    return RadioModel(bandwidth=150.0, transmission_range=50.0, altitude=0.0)


@pytest.fixture
def energy():
    """A battery that binds on the test instances (tours must choose)."""
    return EnergyModel(capacity=2e4, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


@pytest.fixture
def roomy_energy():
    """A battery large enough to collect everything on the test instances."""
    return EnergyModel(capacity=5e5, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


@pytest.fixture
def generator(region):
    """Network generator over the test region."""
    return NetworkGenerator(region, volume_range=(50.0, 500.0))


@pytest.fixture
def small_net(generator):
    """20 uniform nodes — the workhorse instance."""
    return generator.uniform(20, seed=7)


@pytest.fixture
def tiny_net(generator):
    """6 nodes — small enough for exact orienteering oracles."""
    return generator.uniform(6, seed=3)


@pytest.fixture
def clustered_net(generator):
    """18 nodes in 3 clusters — exercises coverage overlap heavily."""
    return generator.clustered(18, n_clusters=3, spread=25.0, seed=11)
