"""Unit tests for repro.core.benchmark_alg (Christofides + prune baseline)."""

import numpy as np
import pytest

from repro.core.benchmark_alg import plan_benchmark
from repro.core.tour import validate_tour_feasibility
from repro.sim.validate import cross_validate


class TestFeasibility:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible(self, generator, radio, energy, seed):
        net = generator.uniform(18, seed=seed)
        tour = plan_benchmark(net, energy, radio)
        assert validate_tour_feasibility(tour, radio=radio).feasible

    def test_cross_validates(self, small_net, radio, energy):
        tour = plan_benchmark(small_net, energy, radio)
        assert cross_validate(tour, radio).ok

    def test_huge_budget_visits_all(self, small_net, radio, roomy_energy):
        tour = plan_benchmark(small_net, roomy_energy, radio)
        assert tour.meta["removals"] == 0
        assert tour.n_hovers == small_net.n_nodes
        assert tour.collected_volume == pytest.approx(small_net.total_volume)

    def test_tiny_budget_depot_only(self, small_net, radio):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        tour = plan_benchmark(small_net, tiny, radio)
        assert tour.collected_volume == 0.0
        assert len(tour.points) == 1

    def test_empty_network(self, generator, radio, energy):
        net = generator.uniform(0, seed=0)
        tour = plan_benchmark(net, energy, radio)
        assert tour.collected_volume == 0.0


class TestPruning:
    def test_removals_decrease_with_budget(self, small_net, radio):
        from repro.energy.model import EnergyModel
        removals = []
        for cap in (5e3, 1e4, 2e4, 5e4):
            e = EnergyModel(capacity=cap, hover_power=150.0,
                            travel_power=100.0, speed=10.0)
            removals.append(plan_benchmark(small_net, e, radio).meta["removals"])
        assert all(b <= a for a, b in zip(removals, removals[1:]))

    def test_collected_monotone_in_budget(self, small_net, radio):
        from repro.energy.model import EnergyModel
        volumes = []
        for cap in (5e3, 1e4, 2e4, 5e4):
            e = EnergyModel(capacity=cap, hover_power=150.0,
                            travel_power=100.0, speed=10.0)
            volumes.append(plan_benchmark(small_net, e, radio).collected_volume)
        assert all(b >= a - 1e-6 for a, b in zip(volumes, volumes[1:]))

    def test_hover_above_each_kept_sensor(self, small_net, radio, energy):
        # The baseline hovers exactly on sensor positions.
        tour = plan_benchmark(small_net, energy, radio)
        for p, s in zip(tour.points[1:], tour.sojourns[1:]):
            d = np.linalg.norm(small_net.positions - p, axis=1)
            assert d.min() < 1e-9

    def test_sojourn_is_exact_drain_time(self, small_net, radio, energy):
        tour = plan_benchmark(small_net, energy, radio)
        for p, s in zip(tour.points[1:], tour.sojourns[1:]):
            v = int(np.argmin(np.linalg.norm(small_net.positions - p, axis=1)))
            assert s == pytest.approx(small_net.volumes[v] / radio.bandwidth)

    def test_meta_fields(self, small_net, radio, energy):
        tour = plan_benchmark(small_net, energy, radio)
        assert tour.method == "benchmark"
        assert tour.meta["initial_nodes"] == small_net.n_nodes
        assert tour.meta["n_visited"] + tour.meta["removals"] == \
            small_net.n_nodes
