"""Unit tests for repro.tsp.length."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances, tour_length
from repro.tsp.length import rotate_to_start, tour_edges, tour_length_matrix, validate_tour
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def dist(rng):
    return pairwise_distances(rng.uniform(0, 10, (6, 2)))


class TestValidateTour:
    def test_valid_tour_passes(self):
        out = validate_tour([0, 2, 1], n=3)
        np.testing.assert_array_equal(out, [0, 2, 1])

    def test_empty_tour_valid(self):
        assert len(validate_tour([], n=5)) == 0

    def test_duplicate_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_tour([0, 1, 0], n=3)

    def test_out_of_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_tour([0, 3], n=3)

    def test_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_tour([-1, 0], n=3)

    def test_2d_rejected(self):
        with pytest.raises(InvalidParameterError):
            validate_tour([[0, 1]], n=3)


class TestTourLengthMatrix:
    def test_matches_coordinate_version(self, rng):
        pts = rng.uniform(0, 10, (7, 2))
        dist = pairwise_distances(pts)
        tour = np.array([0, 3, 1, 6, 2, 5, 4])
        assert tour_length_matrix(tour, dist) == pytest.approx(
            tour_length(pts[tour]))

    def test_singleton_zero(self, dist):
        assert tour_length_matrix([2], dist) == 0.0

    def test_empty_zero(self, dist):
        assert tour_length_matrix([], dist) == 0.0

    def test_pair_out_and_back(self, dist):
        assert tour_length_matrix([0, 1], dist) == pytest.approx(2 * dist[0, 1])

    def test_reversal_invariant(self, dist):
        tour = np.array([0, 2, 4, 1, 3])
        assert tour_length_matrix(tour, dist) == pytest.approx(
            tour_length_matrix(tour[::-1], dist))


class TestTourEdges:
    def test_closed_edge_list(self):
        edges = tour_edges([0, 1, 2])
        assert edges == [(0, 1), (1, 2), (2, 0)]

    def test_short_tours_no_edges(self):
        assert tour_edges([0]) == []
        assert tour_edges([]) == []


class TestRotateToStart:
    def test_rotation(self):
        out = rotate_to_start([3, 1, 4, 0], start=4)
        np.testing.assert_array_equal(out, [4, 0, 3, 1])

    def test_already_at_start(self):
        out = rotate_to_start([4, 0, 3], start=4)
        np.testing.assert_array_equal(out, [4, 0, 3])

    def test_missing_start_rejected(self):
        with pytest.raises(InvalidParameterError):
            rotate_to_start([1, 2, 3], start=9)

    def test_length_preserved(self, dist):
        tour = np.array([0, 2, 4, 1, 3])
        rotated = rotate_to_start(tour, 4)
        assert tour_length_matrix(tour, dist) == pytest.approx(
            tour_length_matrix(rotated, dist))
