"""Integration tests: every planner x every scenario, end to end.

Each case plans a tour through the public facade, validates it with the
first-principles validator, *and* executes it in the independent simulator
— the strongest cross-module statement the library makes.
"""

import numpy as np
import pytest

from repro import (
    PAPER_ENERGY_MODEL,
    PAPER_RADIO_MODEL,
    EnergyModel,
    InvalidParameterError,
    clustered_network,
    cross_validate,
    grid_network,
    paper_default_network,
    plan_tour,
    validate_tour_feasibility,
)

PLANNER_CASES = [
    ("algorithm1", {"seed": 0, "n_restarts": 2}),
    ("algorithm2", {}),
    ("algorithm3", {"K": 2}),
    ("algorithm3", {"K": 4}),
    ("benchmark", {}),
]


def scenario_nets():
    return {
        "uniform": paper_default_network(30, seed=1),
        "clustered": clustered_network(30, n_clusters=4, seed=2),
        "grid": grid_network(5, 6, jitter=10.0, seed=3),
    }


@pytest.mark.parametrize("method,kwargs", PLANNER_CASES)
@pytest.mark.parametrize("scenario", ["uniform", "clustered", "grid"])
def test_plan_validate_execute(method, kwargs, scenario):
    net = scenario_nets()[scenario]
    energy = EnergyModel(capacity=5e4, hover_power=150.0,
                         travel_power=100.0, speed=10.0)
    extra = {} if method == "benchmark" else {"delta": 30.0}
    tour = plan_tour(net, energy, PAPER_RADIO_MODEL, method=method,
                     **extra, **kwargs)
    # 1. First-principles feasibility.
    report = validate_tour_feasibility(tour, radio=PAPER_RADIO_MODEL)
    assert report.feasible
    # 2. Independent execution reproduces the claims.
    sim_report = cross_validate(tour, PAPER_RADIO_MODEL)
    assert sim_report.ok
    assert sim_report.simulated_energy <= energy.capacity + 1e-6


class TestRelativePerformance:
    """The paper's headline orderings, asserted end to end."""

    @pytest.fixture(scope="class")
    def tours(self):
        net = paper_default_network(40, seed=9)
        energy = EnergyModel(capacity=4e4, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        out = {}
        for method, kwargs in PLANNER_CASES:
            extra = {} if method == "benchmark" else {"delta": 20.0}
            key = method + (f"-K{kwargs['K']}" if "K" in kwargs else "")
            out[key] = plan_tour(net, energy, PAPER_RADIO_MODEL,
                                 method=method, **extra, **kwargs)
        return out

    def test_planners_beat_benchmark(self, tours):
        bench = tours["benchmark"].collected_volume
        for key in ("algorithm1", "algorithm2", "algorithm3-K2",
                    "algorithm3-K4"):
            assert tours[key].collected_volume >= bench - 1e-6

    def test_substantial_improvement(self, tours):
        # Fig. 3(a)/4(a): the grid planners collect far more than the
        # per-sensor baseline under a binding budget (paper reports ~2x;
        # accept anything above 1.2x to stay robust to instance noise).
        bench = tours["benchmark"].collected_volume
        assert tours["algorithm2"].collected_volume >= 1.2 * bench

    def test_all_within_budget(self, tours):
        for tour in tours.values():
            assert tour.total_energy <= tour.energy.capacity + 1e-6


class TestPublicApi:
    def test_planners_registry_complete(self):
        from repro import PLANNERS
        assert set(PLANNERS) == {"algorithm1", "algorithm2", "algorithm3",
                                 "benchmark"}

    def test_plan_tour_unknown_method(self):
        net = paper_default_network(5, seed=0)
        with pytest.raises(InvalidParameterError):
            plan_tour(net, PAPER_ENERGY_MODEL, PAPER_RADIO_MODEL,
                      method="alg9")

    def test_benchmark_rejects_extras(self):
        net = paper_default_network(5, seed=0)
        with pytest.raises(InvalidParameterError):
            plan_tour(net, PAPER_ENERGY_MODEL, PAPER_RADIO_MODEL,
                      method="benchmark", K=2)

    def test_algorithm3_default_k(self):
        net = paper_default_network(10, seed=0)
        tour = plan_tour(net, PAPER_ENERGY_MODEL, PAPER_RADIO_MODEL,
                         method="algorithm3", delta=30.0)
        assert tour.meta["K"] == 2

    def test_quickstart_docstring_flow(self):
        # The README / package-docstring quickstart must keep working.
        net = paper_default_network(n=50, seed=42)
        tour = plan_tour(net, PAPER_ENERGY_MODEL, PAPER_RADIO_MODEL,
                         method="algorithm2", delta=20.0)
        assert tour.collected_volume > 0

    def test_version_exported(self):
        import repro
        assert repro.__version__


class TestSerializationIntegration:
    def test_persisted_instance_plans_identically(self, tmp_path):
        from repro.network.serialization import network_from_json, network_to_json
        net = paper_default_network(20, seed=5)
        path = tmp_path / "net.json"
        path.write_text(network_to_json(net))
        loaded = network_from_json(path.read_text())
        energy = EnergyModel(capacity=3e4, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        a = plan_tour(net, energy, PAPER_RADIO_MODEL,
                      method="algorithm2", delta=25.0)
        b = plan_tour(loaded, energy, PAPER_RADIO_MODEL,
                      method="algorithm2", delta=25.0)
        assert a.collected_volume == pytest.approx(b.collected_volume)
        np.testing.assert_allclose(a.points, b.points)
