"""Tests for the two travel-energy readings (EnergyModel.distance_based_travel)."""

import pytest

from repro.energy.model import PAPER_ENERGY_MODEL, PAPER_LITERAL_ENERGY_MODEL, EnergyModel


class TestReadings:
    def test_physical_cost_per_meter(self):
        assert PAPER_ENERGY_MODEL.travel_cost_per_meter == 10.0  # 100/10

    def test_literal_cost_per_meter(self):
        assert PAPER_LITERAL_ENERGY_MODEL.travel_cost_per_meter == 100.0

    def test_literal_is_10x_physical_here(self):
        d = 123.0
        assert PAPER_LITERAL_ENERGY_MODEL.travel_energy(d) == pytest.approx(
            10.0 * PAPER_ENERGY_MODEL.travel_energy(d))

    def test_travel_time_reading_independent(self):
        assert PAPER_ENERGY_MODEL.travel_time(100.0) == \
            PAPER_LITERAL_ENERGY_MODEL.travel_time(100.0) == 10.0

    def test_hover_energy_reading_independent(self):
        assert PAPER_ENERGY_MODEL.hover_energy(2.0) == \
            PAPER_LITERAL_ENERGY_MODEL.hover_energy(2.0)

    def test_max_travel_distance_scales(self):
        assert PAPER_ENERGY_MODEL.max_travel_distance() == pytest.approx(
            10.0 * PAPER_LITERAL_ENERGY_MODEL.max_travel_distance())

    def test_with_capacity_preserves_reading(self):
        m = PAPER_LITERAL_ENERGY_MODEL.with_capacity(5e5)
        assert m.distance_based_travel
        assert m.travel_cost_per_meter == 100.0


class TestPlannersUnderLiteralReading:
    def test_tours_feasible_under_literal(self, small_net, radio):
        from repro.core.planner import plan_tour
        from repro.core.tour import validate_tour_feasibility
        energy = EnergyModel(capacity=2e5, hover_power=150.0,
                             travel_power=100.0, speed=10.0,
                             distance_based_travel=True)
        for method, kw in [("algorithm2", {"delta": 25.0}),
                           ("algorithm3", {"delta": 25.0, "K": 2}),
                           ("benchmark", {})]:
            tour = plan_tour(small_net, energy, radio, method=method, **kw)
            assert validate_tour_feasibility(tour, radio=radio).feasible

    def test_literal_collects_no_more_than_physical(self, small_net, radio):
        # Same capacity, 10x dearer travel -> never more data.
        from repro.core.algorithm2 import plan_algorithm2
        cap = 2e4
        physical = EnergyModel(capacity=cap, hover_power=150.0,
                               travel_power=100.0, speed=10.0)
        literal = EnergyModel(capacity=cap, hover_power=150.0,
                              travel_power=100.0, speed=10.0,
                              distance_based_travel=True)
        vp = plan_algorithm2(small_net, physical, radio,
                             delta=25.0).collected_volume
        vl = plan_algorithm2(small_net, literal, radio,
                             delta=25.0).collected_volume
        assert vl <= vp + 1e-6

    def test_simulator_respects_reading(self, small_net, radio):
        from repro.core.algorithm2 import plan_algorithm2
        from repro.sim import cross_validate
        energy = EnergyModel(capacity=1e5, hover_power=150.0,
                             travel_power=100.0, speed=10.0,
                             distance_based_travel=True)
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0)
        report = cross_validate(tour, radio)
        assert report.ok

    def test_paper_preset_uses_literal(self):
        from repro.experiments.config import paper_settings, reduced_settings
        assert paper_settings().energy_model().distance_based_travel
        assert not reduced_settings().energy_model().distance_based_travel


class TestScoringPolicies:
    def test_unknown_policy_rejected(self, small_net, radio, energy):
        from repro.core.algorithm2 import plan_algorithm2
        from repro.utils.errors import InvalidParameterError
        with pytest.raises(InvalidParameterError):
            plan_algorithm2(small_net, energy, radio, delta=25.0,
                            scoring="psychic")

    @pytest.mark.parametrize("scoring", ["award", "proximity", "hover_ratio"])
    def test_ablation_policies_feasible(self, small_net, radio, energy,
                                        scoring):
        from repro.core.algorithm2 import plan_algorithm2
        from repro.core.tour import validate_tour_feasibility
        tour = plan_algorithm2(small_net, energy, radio, delta=25.0,
                               scoring=scoring)
        assert validate_tour_feasibility(tour, radio=radio).feasible
        assert tour.meta["scoring"] == scoring
