"""Unit tests for repro.core.hovering."""

import numpy as np
import pytest

from repro.core.hovering import build_hovering_sites
from repro.geometry.grid import GridPartition
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def sites(small_net, radio):
    return build_hovering_sites(small_net, radio, delta=25.0)


class TestBuild:
    def test_every_site_covers_a_sensor(self, sites):
        assert sites.cov_matrix.any(axis=1).all()

    def test_every_sensor_coverable(self, small_net, radio):
        # delta < R0 guarantees the square containing a sensor has its
        # centre within R0 of it.
        sites = build_hovering_sites(small_net, radio, delta=20.0)
        assert sites.cov_matrix.any(axis=0).all()

    def test_award_is_covered_volume_sum(self, sites, small_net):
        for j in range(sites.n_sites):
            covered = sites.coverage_list(j)
            assert sites.awards[j] == pytest.approx(
                small_net.volumes[covered].sum())

    def test_hover_time_is_max_upload_time(self, sites, small_net, radio):
        # Eq. 7: t(s_j) = max_{v in C(s_j)} D_v / B.
        for j in range(sites.n_sites):
            covered = sites.coverage_list(j)
            expected = (small_net.volumes[covered] / radio.bandwidth).max()
            assert sites.hover_times[j] == pytest.approx(expected)

    def test_unpruned_includes_empty_squares(self, small_net, radio):
        pruned = build_hovering_sites(small_net, radio, delta=25.0)
        full = build_hovering_sites(small_net, radio, delta=25.0, prune=False)
        assert full.n_sites >= pruned.n_sites
        grid = GridPartition(small_net.region, 25.0)
        assert full.n_sites == grid.num_squares

    def test_pruned_site_count_linear_in_v(self, generator, radio):
        # Doubling |V| should not explode the candidate count beyond ~2x
        # (plus overlap slack) — the paper's linearity argument.
        small = build_hovering_sites(generator.uniform(10, seed=1), radio, 20.0)
        large = build_hovering_sites(generator.uniform(20, seed=1), radio, 20.0)
        assert large.n_sites <= 2.5 * small.n_sites + 20

    def test_coverage_boundary_inclusive(self, radio, region):
        from repro.network.sensor_network import SensorNetwork
        # Sensor exactly R0 from the only candidate centre that survives.
        net = SensorNetwork(positions=[[50.0, 50.0]], volumes=[100.0],
                            depot=[0.0, 0.0], region=region)
        sites = build_hovering_sites(net, radio, delta=100.0)
        # Square centre (50, 50) distance 0 -> covered.
        assert sites.n_sites >= 1
        assert sites.cov_matrix.any()

    def test_rejects_bad_delta(self, small_net, radio):
        with pytest.raises(InvalidParameterError):
            build_hovering_sites(small_net, radio, delta=-1.0)

    def test_coverage_list_bounds(self, sites):
        with pytest.raises(InvalidParameterError):
            sites.coverage_list(sites.n_sites)


class TestOverlapMatrix:
    def test_symmetric_no_diagonal(self, sites):
        ov = sites.overlap_matrix()
        assert (ov == ov.T).all()
        assert not ov.diagonal().any()

    def test_overlap_iff_shared_sensor(self, sites):
        ov = sites.overlap_matrix()
        cov = sites.cov_matrix
        for i in range(min(sites.n_sites, 10)):
            for j in range(min(sites.n_sites, 10)):
                if i == j:
                    continue
                shared = (cov[i] & cov[j]).any()
                assert ov[i, j] == shared


class TestResidualHelpers:
    def test_residual_awards_full_volumes(self, sites, small_net):
        np.testing.assert_allclose(
            sites.residual_awards(small_net.volumes), sites.awards)

    def test_residual_awards_zero(self, sites, small_net):
        zero = np.zeros(small_net.n_nodes)
        np.testing.assert_allclose(sites.residual_awards(zero), 0.0)

    def test_residual_hover_times_full(self, sites, small_net):
        np.testing.assert_allclose(
            sites.residual_hover_times(small_net.volumes), sites.hover_times)

    def test_residual_monotone(self, sites, small_net, rng):
        partial = small_net.volumes * rng.uniform(0, 1, small_net.n_nodes)
        assert (sites.residual_awards(partial)
                <= sites.residual_awards(small_net.volumes) + 1e-9).all()
        assert (sites.residual_hover_times(partial)
                <= sites.residual_hover_times(small_net.volumes) + 1e-9).all()

    def test_residual_shape_validated(self, sites):
        with pytest.raises(InvalidParameterError):
            sites.residual_awards([1.0, 2.0])
