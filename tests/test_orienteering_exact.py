"""Unit tests for repro.orienteering.exact against brute force."""

import itertools

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.orienteering.exact import MAX_EXACT_NODES, solve_exact
from repro.orienteering.problem import OrienteeringInstance
from repro.utils.errors import InvalidParameterError


def brute_force(instance):
    """Enumerate every subset and every order — the ultimate oracle."""
    n = instance.n_nodes
    others = [v for v in range(n) if v != instance.depot]
    best = instance.awards[instance.depot]
    for r in range(0, len(others) + 1):
        for subset in itertools.combinations(others, r):
            for perm in itertools.permutations(subset):
                tour = [instance.depot, *perm]
                if (instance.tour_cost(tour) <= instance.budget + 1e-9
                        and instance.conflicts_ok(tour)):
                    best = max(best, instance.tour_award(tour))
    return best


def random_instance(rng, n, budget_scale=1.0, groups=None):
    pts = rng.uniform(0, 100, (n, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, n)
    awards[0] = 0.0
    budget = budget_scale * rng.uniform(100, 300)
    return OrienteeringInstance(costs=costs, awards=awards, budget=budget,
                                depot=0, conflict_groups=groups)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        inst = random_instance(rng, 7)
        sol = solve_exact(inst)
        assert inst.is_feasible(sol.tour)
        assert sol.award == pytest.approx(brute_force(inst))

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_brute_force_with_conflicts(self, seed):
        rng = np.random.default_rng(100 + seed)
        groups = [np.array([1, 2]), np.array([3, 4])]
        inst = random_instance(rng, 6, groups=groups)
        sol = solve_exact(inst)
        assert inst.is_feasible(sol.tour)
        assert sol.award == pytest.approx(brute_force(inst))

    def test_zero_budget_returns_depot_only(self, rng):
        inst = random_instance(rng, 6)
        tight = OrienteeringInstance(costs=inst.costs, awards=inst.awards,
                                     budget=0.0, depot=0)
        sol = solve_exact(tight)
        np.testing.assert_array_equal(sol.tour, [0])
        assert sol.award == 0.0

    def test_huge_budget_collects_everything(self, rng):
        inst = random_instance(rng, 6)
        rich = OrienteeringInstance(costs=inst.costs, awards=inst.awards,
                                    budget=1e9, depot=0)
        sol = solve_exact(rich)
        assert sol.award == pytest.approx(inst.awards.sum())

    def test_depot_only_instance(self):
        inst = OrienteeringInstance(costs=np.zeros((1, 1)), awards=[0.0],
                                    budget=10.0)
        sol = solve_exact(inst)
        np.testing.assert_array_equal(sol.tour, [0])

    def test_size_limit_enforced(self):
        n = MAX_EXACT_NODES + 1
        inst = OrienteeringInstance(costs=np.zeros((n, n)),
                                    awards=np.zeros(n), budget=1.0)
        with pytest.raises(InvalidParameterError):
            solve_exact(inst)

    def test_returns_cheapest_tour_for_winning_subset(self, rng):
        # Among tours with the optimal award, the DP reconstructs one with
        # minimal cost — it must at least be budget-feasible and optimal.
        inst = random_instance(rng, 7, budget_scale=2.0)
        sol = solve_exact(inst)
        assert inst.is_feasible(sol.tour)
        assert sol.cost <= inst.budget + 1e-9
