"""Fixture tests: every repro-lint rule fires on a known-bad snippet and
stays quiet on a known-good one.

Fixtures are written into a throwaway project tree (``tmp_path``) shaped
like the real repo (``src/repro/...`` + root documents) so path-scoped
rules (energy-only, repro-only) see realistic layouts.
"""

from __future__ import annotations

import textwrap


from repro.analysis.engine import Project, run_rules
from repro.analysis.rules import (
    ExportDriftRule,
    HotPathPurityRule,
    ObsSpanNamingRule,
    PaperEquationRule,
    RegistrySyncRule,
    RngDisciplineRule,
    UnitsSuffixRule,
)


def make_project(tmp_path, files, docs=None):
    """Materialise *files* (rel path -> source) and load a Project."""
    for rel, source in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    for rel, text in (docs or {}).items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
    return Project.load(tmp_path, [tmp_path / "src"])


def rule_findings(project, rule):
    return [f for f in run_rules(project, [rule]) if f.rule == rule.rule_id]


class TestRngDiscipline:
    BAD = """
        import numpy as np

        def sample(seed):
            rng = np.random.default_rng(seed)
            return rng.uniform()
    """
    GOOD = """
        from repro.utils.rng import as_rng

        def sample(seed):
            rng = as_rng(seed)
            return rng.uniform()
    """

    def test_fires_on_default_rng(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/net/gen.py": self.BAD})
        found = rule_findings(project, RngDisciplineRule())
        assert len(found) == 1
        assert "np.random.default_rng" in found[0].message
        assert found[0].line == 5
        assert "as_rng" in found[0].hint

    def test_quiet_on_as_rng(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/net/gen.py": self.GOOD})
        assert rule_findings(project, RngDisciplineRule()) == []

    def test_quiet_inside_rng_module_itself(self, tmp_path):
        project = make_project(
            tmp_path, {"src/repro/utils/rng.py": self.BAD})
        assert rule_findings(project, RngDisciplineRule()) == []

    def test_quiet_outside_repro_package(self, tmp_path):
        # Tests pin np.random.default_rng(seed) deliberately.
        (tmp_path / "src").mkdir()
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_x.py").write_text(
            textwrap.dedent(self.BAD))
        project = Project.load(tmp_path, [tmp_path / "tests"])
        assert rule_findings(project, RngDisciplineRule()) == []

    def test_generator_param_draws_are_sanctioned(self, tmp_path):
        # Threaded-RNG discipline: drawing from a parameter annotated
        # numpy.random.Generator is the approved pattern, even when the
        # parameter is literally named `random`.
        project = make_project(tmp_path, {"src/repro/net/gen.py": """
            import numpy as np

            def sample(random: np.random.Generator, n: int) -> float:
                return float(random.uniform(0.0, 1.0, n).sum())

            def jitter(rng: "np.random.Generator") -> float:
                return float(rng.normal())
        """})
        assert rule_findings(project, RngDisciplineRule()) == []

    def test_generator_type_import_is_not_direct_use(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/net/gen.py": """
            from numpy.random import Generator

            def rewrap(gen: Generator) -> float:
                return float(gen.normal())
        """})
        assert rule_findings(project, RngDisciplineRule()) == []

    def test_unannotated_random_param_still_fires(self, tmp_path):
        # Without the Generator annotation the `random.*` chain still
        # looks like module-level state and keeps firing.
        project = make_project(tmp_path, {"src/repro/net/gen.py": """
            def sample(random, n):
                return random.uniform(0.0, 1.0, n)
        """})
        found = rule_findings(project, RngDisciplineRule())
        assert len(found) == 1
        assert "random.uniform" in found[0].message

    def test_generator_param_does_not_leak_across_functions(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/net/gen.py": """
            import numpy as np

            def ok(random: np.random.Generator):
                return random.normal()

            def bad(n):
                return np.random.uniform(0.0, 1.0, n)
        """})
        found = rule_findings(project, RngDisciplineRule())
        assert [f.line for f in found] == [8]

    def test_fires_on_stdlib_random_and_from_import(self, tmp_path):
        bad = """
            import random
            from numpy.random import default_rng

            def jitter():
                return random.uniform(0, 1) + default_rng().uniform()
        """
        project = make_project(tmp_path, {"src/repro/sim/j.py": bad})
        found = rule_findings(project, RngDisciplineRule())
        assert {f.message.split("'")[1] for f in found} == {
            "random.uniform", "default_rng"}

    def test_allow_directive_suppresses(self, tmp_path):
        allowed = """
            import numpy as np

            def sample(seed):
                rng = np.random.default_rng(seed)  # repro: allow[rng-discipline]
                return rng.uniform()
        """
        project = make_project(tmp_path, {"src/repro/net/gen.py": allowed})
        assert rule_findings(project, RngDisciplineRule()) == []


class TestHotPathPurity:
    BAD = """
        # repro: hot-path
        import numpy as np

        def rescore(cov, rem):
            scores = np.zeros((len(cov), len(rem)))
            return scores
    """
    GOOD = """
        # repro: hot-path
        import numpy as np

        def rescore(vals, starts):
            out = np.zeros(len(starts))
            out[:] = np.add.reduceat(vals, starts)
            return out
    """

    def test_fires_on_dense_alloc_in_hot_module(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/core/k.py": self.BAD})
        found = rule_findings(project, HotPathPurityRule())
        assert len(found) == 1
        assert "np.zeros" in found[0].message

    def test_quiet_on_1d_alloc(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/core/k.py": self.GOOD})
        assert rule_findings(project, HotPathPurityRule()) == []

    def test_quiet_without_marker(self, tmp_path):
        unmarked = self.BAD.replace("# repro: hot-path", "")
        project = make_project(tmp_path, {"src/repro/core/k.py": unmarked})
        assert rule_findings(project, HotPathPurityRule()) == []

    def test_cold_path_function_opts_out(self, tmp_path):
        mixed = """
            # repro: hot-path
            import numpy as np

            def dense_reference(cov, rem):
                # repro: cold-path
                return np.where(cov, rem[None, :], 0.0) @ np.ones(len(rem))

            def hot(cov, rem):
                return rem[:, None] * cov[None, :]
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": mixed})
        found = rule_findings(project, HotPathPurityRule())
        assert len(found) == 1
        assert found[0].message.startswith("broadcasted dense temporary")
        assert "def hot" in project.modules[0].text.splitlines()[
            found[0].line - 2] or found[0].line == 9

    def test_hot_function_in_cold_module(self, tmp_path):
        mixed = """
            import numpy as np

            def cold(a, b):
                return np.outer(a, b)

            def hot(a, b):
                # repro: hot-path
                return np.outer(a, b)
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": mixed})
        found = rule_findings(project, HotPathPurityRule())
        assert len(found) == 1
        assert found[0].line == 9

    def test_flags_pairwise_distances_and_outer(self, tmp_path):
        bad = """
            # repro: hot-path
            import numpy as np
            from repro.geometry.distance import pairwise_distances

            def build(points, a, b):
                return pairwise_distances(points), np.outer(a, b)
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        kinds = {f.message.split(" in hot-path")[0]
                 for f in rule_findings(project, HotPathPurityRule())}
        assert len(kinds) == 2

    def test_allow_with_reason_suppresses(self, tmp_path):
        allowed = """
            # repro: hot-path
            import numpy as np

            def small_cache(m, k):
                # repro: allow[hot-path-purity] -- (m, K) cache, K small
                return np.zeros((m, k))
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": allowed})
        assert rule_findings(project, HotPathPurityRule()) == []

    def test_fires_on_batched_3d_broadcast(self, tmp_path):
        # The batch kernel's leading variant axis: a (B, m) state column
        # against a (B, n) one makes a dense (B, m, n) temporary.
        bad = """
            # repro: hot-path
            import numpy as np

            def rescore(p_res, rem):
                return p_res[:, :, None] * rem[:, None, :]
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        found = rule_findings(project, HotPathPurityRule())
        assert len(found) == 1
        assert found[0].message.startswith("broadcasted dense temporary")

    def test_fires_on_gram_matmul(self, tmp_path):
        # The site-reduction pre-pass motivated this check: a dense
        # cov @ cov.T intersection-count gram matrix is (m, m).
        bad = """
            # repro: hot-path
            import numpy as np

            def overlaps(cov):
                return (cov @ cov.T) > 0

            def cross(a, b):
                return a.T @ b
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        found = rule_findings(project, HotPathPurityRule())
        assert len(found) == 2
        assert all("gram-matrix matmul" in f.message for f in found)

    def test_quiet_on_plain_matmul(self, tmp_path):
        # Matmuls without a transposed operand are how the kernel *avoids*
        # gram matrices (matvec products, pre-chunked sparse operands).
        good = """
            # repro: hot-path
            import numpy as np

            def award(cov, volumes, chunk, at):
                return cov @ volumes, chunk @ at
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": good})
        assert rule_findings(project, HotPathPurityRule()) == []

    def test_quiet_on_3d_axis_alignment(self, tmp_path):
        # A lone trailing-axis insert (scaling a (B, m, K) table by a
        # (B, m) one) broadcasts against existing axes — no new dense
        # plane, so no finding.
        good = """
            # repro: hot-path
            import numpy as np

            def scale(tau, deltas, eta):
                return tau * eta + deltas[:, :, None] * eta
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": good})
        assert rule_findings(project, HotPathPurityRule()) == []


PLANNER_OK = """
    PLANNERS = {"algorithm2": "greedy", "benchmark": "baseline"}

    def plan_tour(network, *, method="algorithm2", **kwargs):
        if method == "algorithm2":
            return 2
        if method == "benchmark":
            kwargs.pop("engine", "kernel")
            return 0
        raise ValueError(method)
"""

KERNEL_OK = """
    ENGINES = ("kernel", "dense")

    def check_engine(engine):
        return engine
"""

ARCH_OK = 'planners: algorithm2 and benchmark; engines "kernel" and "dense".'


class TestRegistrySync:
    def files(self, planner=PLANNER_OK, kernel=KERNEL_OK):
        return {"src/repro/core/planner.py": planner,
                "src/repro/core/kernel.py": kernel}

    def test_quiet_when_in_sync(self, tmp_path):
        project = make_project(tmp_path, self.files(),
                               docs={"docs/architecture.md": ARCH_OK})
        assert rule_findings(project, RegistrySyncRule()) == []

    def test_fires_on_registry_key_without_dispatch(self, tmp_path):
        planner = PLANNER_OK.replace(
            '"benchmark": "baseline"',
            '"benchmark": "baseline", "algorithm9": "ghost"')
        project = make_project(tmp_path, self.files(planner=planner),
                               docs={"docs/architecture.md":
                                     ARCH_OK + " algorithm9"})
        found = rule_findings(project, RegistrySyncRule())
        assert len(found) == 1
        assert "'algorithm9'" in found[0].message
        assert "dispatch" in found[0].message

    def test_fires_on_dispatch_without_registry_key(self, tmp_path):
        planner = PLANNER_OK + """
        def plan_tour_unused():
            pass
        """
        planner = planner.replace(
            "        raise ValueError(method)",
            '        if method == "secret":\n'
            "            return 9\n"
            "        raise ValueError(method)")
        project = make_project(tmp_path, self.files(planner=planner),
                               docs={"docs/architecture.md": ARCH_OK})
        found = rule_findings(project, RegistrySyncRule())
        assert any("'secret'" in f.message and "missing" in f.message
                   for f in found)

    def test_fires_on_unknown_engine_default(self, tmp_path):
        files = self.files()
        files["src/repro/core/fast.py"] = """
            def plan_fast(network, *, engine="turbo"):
                return engine
        """
        project = make_project(tmp_path, files,
                               docs={"docs/architecture.md": ARCH_OK})
        found = rule_findings(project, RegistrySyncRule())
        assert len(found) == 1
        assert "'turbo'" in found[0].message

    def test_fires_on_undocumented_planner(self, tmp_path):
        project = make_project(
            tmp_path, self.files(),
            docs={"docs/architecture.md":
                  'only algorithm2 here; engines "kernel" and "dense"'})
        found = rule_findings(project, RegistrySyncRule())
        assert len(found) == 1
        assert "'benchmark'" in found[0].message
        assert "architecture" in found[0].message

    def test_sees_registries_outside_checked_paths(self, tmp_path):
        # `check tests` alone must still load src registries from the root.
        for rel, src in self.files().items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(src))
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "architecture.md").write_text(ARCH_OK)
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_a.py").write_text("x = 1\n")
        project = Project.load(tmp_path, [tmp_path / "tests"])
        assert rule_findings(project, RegistrySyncRule()) == []


class TestExportDrift:
    def test_fires_on_stale_entry(self, tmp_path):
        bad = """
            def plan():
                return 1

            __all__ = ["plan", "plan_removed"]
        """
        project = make_project(tmp_path, {"src/repro/core/x.py": bad})
        found = rule_findings(project, ExportDriftRule())
        assert len(found) == 1
        assert "'plan_removed'" in found[0].message

    def test_fires_on_unexported_public_name(self, tmp_path):
        bad = """
            POLICIES = ("a", "b")

            def plan():
                return 1

            __all__ = ["plan"]
        """
        project = make_project(tmp_path, {"src/repro/core/x.py": bad})
        found = rule_findings(project, ExportDriftRule())
        assert len(found) == 1
        assert "'POLICIES'" in found[0].message

    def test_fires_on_missing_all(self, tmp_path):
        project = make_project(
            tmp_path, {"src/repro/core/x.py": "def plan():\n    return 1\n"})
        found = rule_findings(project, ExportDriftRule())
        assert len(found) == 1
        assert "no __all__" in found[0].message

    def test_quiet_on_consistent_module(self, tmp_path):
        good = """
            from repro.utils.errors import ReproError

            LIMIT = 3

            def _helper():
                return 0

            def plan():
                return LIMIT

            __all__ = ["plan", "LIMIT", "ReproError"]
        """
        project = make_project(tmp_path, {"src/repro/core/x.py": good})
        assert rule_findings(project, ExportDriftRule()) == []

    def test_private_modules_and_main_exempt(self, tmp_path):
        project = make_project(tmp_path, {
            "src/repro/core/_vec.py": "def fast():\n    return 1\n",
            "src/repro/core/__main__.py": "def main():\n    return 0\n",
        })
        assert rule_findings(project, ExportDriftRule()) == []


class TestUnitsSuffix:
    def test_fires_on_suffixless_quantity(self, tmp_path):
        bad = """
            def plan_leg(flight_time, hover_power):
                climb_energy = flight_time * 2.0
                return climb_energy
        """
        project = make_project(tmp_path, {"src/repro/energy/leg.py": bad})
        names = {f.message.split("'")[1]
                 for f in rule_findings(project, UnitsSuffixRule())}
        assert names == {"flight_time", "climb_energy"}

    def test_fires_on_banned_unit(self, tmp_path):
        bad = "cruise_speed_kmh = 45.0\n"
        project = make_project(tmp_path, {"src/repro/energy/leg.py": bad})
        found = rule_findings(project, UnitsSuffixRule())
        assert len(found) == 1
        assert "non-canonical unit" in found[0].message

    def test_quiet_on_canonical_suffixes(self, tmp_path):
        good = """
            def plan_leg(flight_time_s, climb_energy_j, speed_mps):
                travel_cost_per_meter = climb_energy_j / 100.0
                return flight_time_s * speed_mps + travel_cost_per_meter
        """
        project = make_project(tmp_path, {"src/repro/energy/leg.py": good})
        assert rule_findings(project, UnitsSuffixRule()) == []

    def test_established_api_grandfathered(self, tmp_path):
        good = """
            class EnergyModel:
                def travel_time(self, distance):
                    return distance / self.speed
        """
        project = make_project(tmp_path, {"src/repro/energy/m.py": good})
        assert rule_findings(project, UnitsSuffixRule()) == []

    def test_scope_is_energy_package_only(self, tmp_path):
        bad = "flight_time = 3.0\n"
        project = make_project(tmp_path, {"src/repro/core/leg.py": bad})
        assert rule_findings(project, UnitsSuffixRule()) == []


PAPER_FIXTURE = """
    # Paper digest
    Hover time and awards (Eqs. 1–5); aux graph (Eqs. 6–9);
    greedy selection (Eqs. 11–13).
"""


class TestPaperEquationRefs:
    def test_quiet_on_registered_citation(self, tmp_path):
        good = '''
            """Greedy ratio (Eq. 13) over residual awards (Eqs. 11-12)."""
        '''
        project = make_project(tmp_path, {"src/repro/core/a.py": good},
                               docs={"PAPER.md": PAPER_FIXTURE})
        assert rule_findings(project, PaperEquationRule()) == []

    def test_fires_on_unregistered_equation(self, tmp_path):
        bad = '''
            """Implements Eq. (42), the answer to everything."""
        '''
        project = make_project(tmp_path, {"src/repro/core/a.py": bad},
                               docs={"PAPER.md": PAPER_FIXTURE})
        found = rule_findings(project, PaperEquationRule())
        assert len(found) == 1
        assert "Eq. (42)" in found[0].message

    def test_fires_on_never_cited_eq_10(self, tmp_path):
        bad = '''
            """The orienteering objective (Eq. 10)."""
        '''
        project = make_project(tmp_path, {"src/repro/core/a.py": bad},
                               docs={"PAPER.md": PAPER_FIXTURE})
        found = rule_findings(project, PaperEquationRule())
        assert len(found) == 1

    def test_fires_when_anchor_missing_from_paper(self, tmp_path):
        good = '''
            """Residual award (Eq. 11)."""
        '''
        project = make_project(
            tmp_path, {"src/repro/core/a.py": good},
            docs={"PAPER.md": "# digest without the equations tables"})
        found = rule_findings(project, PaperEquationRule())
        assert len(found) == 1
        assert "anchor" in found[0].message

    def test_range_citations_expand(self, tmp_path):
        good = '''
            """Aux graph weights (Eqs. 6–9)."""
        '''
        project = make_project(tmp_path, {"src/repro/core/a.py": good},
                               docs={"PAPER.md": PAPER_FIXTURE})
        assert rule_findings(project, PaperEquationRule()) == []

    def test_line_numbers_point_into_docstring(self, tmp_path):
        bad = '''
            """Module header.

            Later paragraph cites Eq. (99).
            """
        '''
        project = make_project(tmp_path, {"src/repro/core/a.py": bad},
                               docs={"PAPER.md": PAPER_FIXTURE})
        found = rule_findings(project, PaperEquationRule())
        assert found[0].line == 4


class TestObsSpanNaming:
    BAD = """
        from repro.obs.tracer import span

        def rescore():
            with span("Rescore!"):
                return 1
    """
    GOOD = """
        from repro.obs.tracer import span

        def rescore():
            with span("kernel.rescore"):
                return 1
    """

    def test_fires_on_undotted_name(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/core/k.py": self.BAD})
        found = rule_findings(project, ObsSpanNamingRule())
        assert len(found) == 1
        assert "'Rescore!'" in found[0].message
        assert found[0].line == 5

    def test_quiet_on_dotted_lowercase(self, tmp_path):
        project = make_project(tmp_path, {"src/repro/core/k.py": self.GOOD})
        assert rule_findings(project, ObsSpanNamingRule()) == []

    def test_fires_on_single_segment_and_camel_case(self, tmp_path):
        bad = """
            from repro.obs.tracer import span

            def f(tracer):
                with span("rescore"):
                    pass
                with tracer.span("kernel.Rescore"):
                    pass
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        names = {f.message.split("'")[1]
                 for f in rule_findings(project, ObsSpanNamingRule())}
        assert names == {"rescore", "kernel.Rescore"}

    def test_dynamic_names_skipped(self, tmp_path):
        dynamic = """
            from repro.obs.tracer import span

            def f(name):
                with span(name):
                    pass
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": dynamic})
        assert rule_findings(project, ObsSpanNamingRule()) == []

    def test_unrelated_span_attributes_ignored(self, tmp_path):
        unrelated = """
            import re

            def f(match):
                return match.span("BAD NAME")
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": unrelated})
        assert rule_findings(project, ObsSpanNamingRule()) == []

    def test_scope_is_repro_package_only(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "tests").mkdir()
        (tmp_path / "tests" / "test_x.py").write_text(textwrap.dedent(
            self.BAD))
        project = Project.load(tmp_path, [tmp_path / "tests"])
        assert rule_findings(project, ObsSpanNamingRule()) == []

    def test_allow_directive_suppresses(self, tmp_path):
        allowed = """
            from repro.obs.tracer import span

            def f():
                # repro: allow[obs-span-naming] -- legacy external name
                with span("LegacyProfiler"):
                    pass
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": allowed})
        assert rule_findings(project, ObsSpanNamingRule()) == []

    # -- Ledger events and ambient metric names (PR 8 extension) ------- #

    def test_fires_on_undotted_ledger_event(self, tmp_path):
        bad = """
            from repro.obs.ledger import record_event

            def f():
                record_event("PlannerCall", label="x")
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        found = rule_findings(project, ObsSpanNamingRule())
        assert len(found) == 1
        assert "ledger event" in found[0].message
        assert "'PlannerCall'" in found[0].message

    def test_quiet_on_dotted_ledger_event(self, tmp_path):
        good = """
            from repro.obs.ledger import record_event

            def f():
                record_event("planner.call", label="x")
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": good})
        assert rule_findings(project, ObsSpanNamingRule()) == []

    def test_fires_on_runrecord_event_kwarg(self, tmp_path):
        bad = """
            from repro.obs.record import RunRecord

            def f():
                return RunRecord(event="sweepCell", label="x")
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        found = rule_findings(project, ObsSpanNamingRule())
        assert len(found) == 1
        assert "'sweepCell'" in found[0].message

    def test_fires_on_ambient_metric_name(self, tmp_path):
        bad = """
            from repro.obs.metrics import get_metrics

            def f():
                reg = get_metrics()
                get_metrics().counter("Insertions").inc()
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": bad})
        found = rule_findings(project, ObsSpanNamingRule())
        assert len(found) == 1
        assert "ambient counter metric" in found[0].message

    def test_kernel_local_registry_names_exempt(self, tmp_path):
        # Short names on a *local* registry are namespaced later by the
        # perf fold; only the ambient get_metrics() receiver is checked.
        local = """
            from repro.obs.metrics import MetricsRegistry

            class Kernel:
                def __init__(self):
                    self.metrics = MetricsRegistry()

                def work(self):
                    self.metrics.counter("drains").inc()
                    self.metrics.timer("rescore")
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": local})
        assert rule_findings(project, ObsSpanNamingRule()) == []

    def test_dynamic_ledger_event_names_skipped(self, tmp_path):
        dynamic = """
            from repro.obs.ledger import record_event

            def f(name):
                record_event(name, label="x")
        """
        project = make_project(tmp_path, {"src/repro/core/k.py": dynamic})
        assert rule_findings(project, ObsSpanNamingRule()) == []


class TestEveryRuleHasFixtureCoverage:
    def test_all_default_rules_tested(self):
        from repro.analysis.rules import default_rules
        tested = {"rng-discipline", "hot-path-purity", "registry-sync",
                  "export-drift", "units-suffix", "paper-eq-refs",
                  "obs-span-naming"}
        assert {r.rule_id for r in default_rules()} == tested
