"""Unit tests for repro.geometry.grid."""

import numpy as np
import pytest

from repro.geometry.grid import GridPartition
from repro.geometry.region import Region
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def grid():
    return GridPartition(Region.square(100.0), delta=10.0)


class TestConstruction:
    def test_dimensions_exact_fit(self, grid):
        assert grid.nrows == 10 and grid.ncols == 10
        assert grid.num_squares == 100

    def test_dimensions_ceil_on_partial_fit(self):
        g = GridPartition(Region.square(105.0), delta=10.0)
        assert g.nrows == 11 and g.ncols == 11

    def test_rejects_non_positive_delta(self):
        with pytest.raises(InvalidParameterError):
            GridPartition(Region.square(100.0), delta=0.0)

    def test_rejects_absurd_delta(self):
        with pytest.raises(InvalidParameterError):
            GridPartition(Region.square(100.0), delta=5000.0)

    def test_single_square_region(self):
        g = GridPartition(Region.square(100.0), delta=100.0)
        assert g.num_squares == 1
        np.testing.assert_allclose(g.centers(), [[50.0, 50.0]])

    def test_rectangular_region(self):
        g = GridPartition(Region(0, 30, 0, 20), delta=10.0)
        assert g.ncols == 3 and g.nrows == 2


class TestCenters:
    def test_count(self, grid):
        assert grid.centers().shape == (100, 2)

    def test_first_center(self, grid):
        np.testing.assert_allclose(grid.centers()[0], [5.0, 5.0])

    def test_last_center(self, grid):
        np.testing.assert_allclose(grid.centers()[-1], [95.0, 95.0])

    def test_row_major_order(self, grid):
        c = grid.centers()
        # Second entry advances along x (column), not y.
        np.testing.assert_allclose(c[1], [15.0, 5.0])
        # Entry ncols advances along y (row).
        np.testing.assert_allclose(c[10], [5.0, 15.0])

    def test_all_centers_distinct(self, grid):
        c = grid.centers()
        assert len(np.unique(c, axis=0)) == len(c)


class TestFlatIndex:
    def test_roundtrip_center_to_index(self, grid):
        centers = grid.centers()
        idx = grid.flat_index(centers)
        np.testing.assert_array_equal(idx, np.arange(100))

    def test_point_maps_to_containing_square(self, grid):
        assert grid.flat_index([[12.0, 3.0]])[0] == 1
        assert grid.flat_index([[3.0, 12.0]])[0] == 10

    def test_outside_points_clamped(self, grid):
        assert grid.flat_index([[-50.0, -50.0]])[0] == 0
        assert grid.flat_index([[500.0, 500.0]])[0] == 99

    def test_center_of_inverse(self, grid):
        np.testing.assert_allclose(grid.center_of(0), [5.0, 5.0])
        np.testing.assert_allclose(grid.center_of(11), [15.0, 15.0])

    def test_center_of_rejects_out_of_range(self, grid):
        with pytest.raises(InvalidParameterError):
            grid.center_of(100)

    def test_center_of_vectorised(self, grid):
        out = grid.center_of([0, 11])
        assert out.shape == (2, 2)


class TestCandidateCenters:
    def test_prunes_far_squares(self, grid):
        # One sensor at the region corner: only nearby squares survive.
        cands = grid.candidate_centers([[5.0, 5.0]], radius=10.0)
        assert 0 < len(cands) < grid.num_squares
        d = np.linalg.norm(cands - [5.0, 5.0], axis=1)
        assert (d <= 10.0).all()

    def test_no_sensors_no_candidates(self, grid):
        assert len(grid.candidate_centers(np.empty((0, 2)), radius=10.0)) == 0

    def test_huge_radius_keeps_all(self, grid):
        cands = grid.candidate_centers([[50.0, 50.0]], radius=1000.0)
        assert len(cands) == grid.num_squares

    def test_every_kept_center_covers_a_sensor(self, grid, rng):
        sensors = rng.uniform(0, 100, (12, 2))
        cands = grid.candidate_centers(sensors, radius=15.0)
        for c in cands:
            assert np.min(np.linalg.norm(sensors - c, axis=1)) <= 15.0

    def test_every_sensor_covered_by_some_center_when_delta_small(self, grid, rng):
        # delta=10 <= radius=15: the square containing a sensor has its
        # centre within delta/sqrt(2) < radius, so coverage is guaranteed.
        sensors = rng.uniform(0, 100, (12, 2))
        cands = grid.candidate_centers(sensors, radius=15.0)
        for s in sensors:
            assert np.min(np.linalg.norm(cands - s, axis=1)) <= 15.0

    def test_rejects_bad_radius(self, grid):
        with pytest.raises(InvalidParameterError):
            grid.candidate_centers([[5.0, 5.0]], radius=0.0)
