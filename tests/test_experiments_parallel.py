"""Tests for the parallel sweep executor, artifact cache, and trace shards.

The load-bearing contract pinned here: ``run_sweep(..., jobs=N)`` returns
rows whose :meth:`SweepRow.deterministic_dict` view is bitwise-identical
to the in-process ``jobs=1`` path, for every figure runner, any worker
count, and cache on or off.
"""

import numpy as np
import pytest

from repro.core.algorithm1 import plan_algorithm1
from repro.core.auxgraph import build_auxiliary_graph
from repro.core.hovering import build_hovering_sites
from repro.experiments.artifacts import ArtifactCache, resolve_cache
from repro.experiments.config import reduced_settings
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.instances import make_instances
from repro.experiments.parallel import _encode_unit, run_sweep_parallel
from repro.experiments.runner import (
    AlgoSpec,
    SweepRow,
    batchable_column,
    format_progress,
    run_sweep,
    sweep_cells,
)
from repro.obs.shards import (
    append_shard,
    list_shards,
    merge_trace_shards,
    shard_path,
)
from repro.obs.tracer import Tracer, activated
from repro.utils.errors import InvalidParameterError


@pytest.fixture(scope="module")
def tiny_config():
    """Small enough that each figure sweep runs in a couple of seconds."""
    return reduced_settings().scaled(
        n_nodes=22, n_instances=2,
        capacity_sweep=(1.5e4, 3e4),
        delta_sweep=(25.0, 40.0),
        delta=25.0, k_values=(2,), seed=11)


def det_rows(result):
    return [row.deterministic_dict() for row in result.rows]


@pytest.fixture(scope="module")
def fig3_seq(tiny_config):
    return run_fig3(tiny_config, n_restarts=1, jobs=1)


class TestParallelEquality:
    def test_fig3_jobs2_matches_sequential(self, tiny_config, fig3_seq):
        par = run_fig3(tiny_config, n_restarts=1, jobs=2)
        assert det_rows(par) == det_rows(fig3_seq)
        assert par.meta["jobs"] == 2
        assert fig3_seq.meta["jobs"] == 1

    def test_fig4_jobs2_matches_sequential(self, tiny_config):
        seq = run_fig4(tiny_config, jobs=1)
        par = run_fig4(tiny_config, jobs=2)
        assert det_rows(par) == det_rows(seq)

    def test_fig5_jobs3_matches_sequential(self, tiny_config):
        seq = run_fig5(tiny_config, jobs=1)
        par = run_fig5(tiny_config, jobs=3)
        assert det_rows(par) == det_rows(seq)

    def test_cache_off_matches_cache_on(self, tiny_config, fig3_seq):
        uncached = run_fig3(tiny_config, n_restarts=1, jobs=1, cache=False)
        assert det_rows(uncached) == det_rows(fig3_seq)
        assert "cache" not in uncached.meta

    def test_parallel_cache_off_matches(self, tiny_config, fig3_seq):
        par = run_fig3(tiny_config, n_restarts=1, jobs=2, cache=False)
        assert det_rows(par) == det_rows(fig3_seq)
        assert "cache" not in par.meta

    def test_sequential_cache_reports_hits(self, tiny_config, fig3_seq):
        # Fig. 3 sweeps capacity at fixed δ: after the first capacity the
        # geometry of every instance must come from the cache.
        stats = fig3_seq.meta["cache"]
        assert stats["hits"] > 0
        assert stats["misses"] > 0

    def test_parallel_cache_stats_merged(self, tiny_config):
        par = run_fig3(tiny_config, n_restarts=1, jobs=2)
        assert par.meta["cache"]["misses"] > 0


class TestDeterministicDict:
    def test_excludes_wall_clock(self):
        row = SweepRow("capacity", 1.0, "A", 2.0, 0.1, 3.0, 0.2, 4,
                       perf={"engine": "kernel", "sites_rescored": 7.0,
                             "seconds.rescore": 0.5})
        det = row.deterministic_dict()
        assert "mean_time_s" not in det
        assert "std_time_s" not in det
        assert det["mean_volume_gb"] == 2.0
        assert det["perf"] == {"engine": "kernel", "sites_rescored": 7.0}

    def test_no_perf(self):
        row = SweepRow("capacity", 1.0, "A", 2.0, 0.1, 3.0, 0.2, 4)
        assert "perf" not in row.deterministic_dict()


class TestCells:
    def test_canonical_order_values_outer(self):
        specs = [AlgoSpec("A", "benchmark", {}), AlgoSpec("B", "benchmark", {})]
        cells = sweep_cells(specs, (10.0, 20.0))
        assert [(i, v, s.name) for i, v, s in cells] == [
            (0, 10.0, "A"), (1, 10.0, "B"), (2, 20.0, "A"), (3, 20.0, "B")]

    def test_format_progress_counter(self):
        row = SweepRow("capacity", 1.5e4, "Algorithm 1",
                       5.25, 0.0, 0.125, 0.0, 2)
        line = format_progress(2, 8, "capacity", 1.5e4, row)
        assert line.startswith("[3/8] capacity=15000 Algorithm 1:")
        assert "5.25 GB" in line


class TestProgressParallel:
    def test_lines_arrive_in_canonical_order(self, tiny_config):
        lines = []
        result = run_fig3(tiny_config, n_restarts=1, jobs=2,
                          progress=lines.append)
        cells = len(result.rows)
        assert len(lines) == cells
        for k, (line, row) in enumerate(zip(lines, result.rows)):
            assert line.startswith(f"[{k + 1}/{cells}] ")
            assert row.algorithm in line


class TestTraceShardsIntegration:
    def test_worker_spans_merge_into_parent(self, tiny_config):
        tracer = Tracer()
        with activated(tracer):
            result = run_fig3(tiny_config, n_restarts=1, jobs=2)
        records = tracer.records()
        cell_spans = [r for r in records if r["name"] == "runner.cell"]
        assert len(cell_spans) == len(result.rows)
        assert sorted(r["attrs"]["cell"] for r in cell_spans) == \
            list(range(len(result.rows)))
        assert all("worker" in r["attrs"] for r in cell_spans)
        ids = [r["id"] for r in records]
        assert len(ids) == len(set(ids))
        id_set = set(ids)
        for r in records:
            assert r["parent"] is None or r["parent"] in id_set
        assert result.meta["trace_records"] == len(
            [r for r in records if r["name"] != "parallel.sweep"])

    def test_no_tracer_no_trace_meta(self, tiny_config):
        result = run_fig3(tiny_config, n_restarts=1, jobs=2)
        assert "trace_records" not in result.meta


class TestShardsUnit:
    @staticmethod
    def _rec(rid, parent, name, **attrs):
        return {"id": rid, "parent": parent, "name": name,
                "t_start": 0.0, "t_end": 1.0, "attrs": attrs}

    def test_shard_path_naming(self, tmp_path):
        path = shard_path(tmp_path, 4242)
        assert path.name == "trace-shard-4242.jsonl"
        assert path.parent == tmp_path

    def test_append_and_list(self, tmp_path):
        path = shard_path(tmp_path, 1)
        append_shard([self._rec(0, None, "runner.cell", cell=0)], path)
        append_shard([self._rec(1, None, "runner.cell", cell=1)], path)
        assert list_shards(tmp_path) == [path]
        merged = merge_trace_shards(tmp_path)
        assert [r["attrs"]["cell"] for r in merged] == [0, 1]

    def test_merge_orders_shards_by_min_cell(self, tmp_path):
        # Worker pids give no ordering guarantee; the merge must sort by
        # the smallest cell index each shard saw.
        append_shard([self._rec(0, None, "runner.cell", cell=3)],
                     shard_path(tmp_path, 111))
        append_shard([self._rec(0, None, "runner.cell", cell=0)],
                     shard_path(tmp_path, 999))
        merged = merge_trace_shards(tmp_path)
        assert [r["attrs"]["cell"] for r in merged] == [0, 3]

    def test_merge_rebases_ids_and_parents(self, tmp_path):
        append_shard([self._rec(0, None, "runner.cell", cell=0),
                      self._rec(1, 0, "alg1.reduction")],
                     shard_path(tmp_path, 1))
        append_shard([self._rec(0, None, "runner.cell", cell=1),
                      self._rec(1, 0, "alg1.reduction")],
                     shard_path(tmp_path, 2))
        merged = merge_trace_shards(tmp_path)
        ids = [r["id"] for r in merged]
        assert len(set(ids)) == 4
        for child in (r for r in merged if r["parent"] is not None):
            parent = next(r for r in merged if r["id"] == child["parent"])
            assert parent["name"] == "runner.cell"

    def test_merge_accepts_explicit_paths(self, tmp_path):
        a = shard_path(tmp_path, 1)
        append_shard([self._rec(0, None, "runner.cell", cell=0)], a)
        assert len(merge_trace_shards([a])) == 1

    def test_merge_empty_dir(self, tmp_path):
        assert merge_trace_shards(tmp_path) == []


class TestWorkUnits:
    def test_non_json_kwargs_rejected(self):
        spec = AlgoSpec("Alg 2", "algorithm2", {})
        energy = reduced_settings().energy_model()
        with pytest.raises(TypeError, match="non-serialisable"):
            _encode_unit(0, "capacity", 1.5e4, spec, energy,
                         {"delta": 25.0, "rng": np.random.default_rng(0)},
                         True)


class TestEngineSelection:
    def test_run_sweep_rejects_jobs_zero(self, tiny_config):
        with pytest.raises(ValueError, match="jobs"):
            run_sweep(tiny_config, [], [], "capacity", (),
                      make_energy=lambda c, v: c.energy_model(),
                      make_kwargs=lambda c, v, s: {}, jobs=0)

    def test_parallel_rejects_jobs_one(self, tiny_config):
        with pytest.raises(ValueError, match="jobs >= 2"):
            run_sweep_parallel(tiny_config, [], [], "capacity", (),
                               make_energy=lambda c, v: c.energy_model(),
                               make_kwargs=lambda c, v, s: {}, jobs=1)

    def test_parallel_empty_cells(self, tiny_config):
        result = run_sweep_parallel(
            tiny_config, [], [], "capacity", (),
            make_energy=lambda c, v: c.energy_model(),
            make_kwargs=lambda c, v, s: {}, jobs=2)
        assert result.rows == []


class TestConfigTransport:
    def test_round_trip(self, tiny_config):
        from repro.experiments.config import ExperimentConfig
        back = ExperimentConfig.from_dict(tiny_config.as_dict())
        assert back == tiny_config

    def test_tuples_restored(self, tiny_config):
        from repro.experiments.config import ExperimentConfig
        data = tiny_config.as_dict()
        assert isinstance(data["capacity_sweep"], list)
        back = ExperimentConfig.from_dict(data)
        assert back.capacity_sweep == tiny_config.capacity_sweep
        assert isinstance(back.capacity_sweep, tuple)

    def test_unknown_key_rejected(self, tiny_config):
        from repro.experiments.config import ExperimentConfig
        data = tiny_config.as_dict()
        data["warp_factor"] = 9
        with pytest.raises(InvalidParameterError):
            ExperimentConfig.from_dict(data)


@pytest.fixture(scope="module")
def cache_setup(tiny_config):
    net = make_instances(tiny_config)[0]
    return net, tiny_config.radio_model(), tiny_config.energy_model()


class TestArtifactCache:
    def test_sites_hit_returns_same_object(self, cache_setup):
        net, radio, _ = cache_setup
        cache = ArtifactCache()
        first = cache.sites(net, radio, 25.0)
        assert cache.sites(net, radio, 25.0) is first
        assert cache.stats() == {"hits": 1, "misses": 1, "artifacts": 1}

    def test_delta_is_part_of_the_key(self, cache_setup):
        net, radio, _ = cache_setup
        cache = ArtifactCache()
        assert cache.sites(net, radio, 25.0) is not cache.sites(net, radio,
                                                                40.0)
        assert cache.misses == 2

    def test_graph_keyed_on_rates_not_capacity(self, cache_setup):
        net, radio, _ = cache_setup
        cfg = reduced_settings()
        cache = ArtifactCache()
        g_low = cache.graph(net, radio, 25.0, cfg.energy_model(capacity=1e4))
        g_high = cache.graph(net, radio, 25.0, cfg.energy_model(capacity=9e4))
        assert g_low is g_high

    def test_conflict_neighbors_depot_entry_empty(self, cache_setup):
        net, radio, _ = cache_setup
        cache = ArtifactCache()
        lists = cache.conflict_neighbors(net, radio, 25.0)
        sites = cache.sites(net, radio, 25.0)
        assert len(lists) == sites.n_sites + 1
        assert lists[0].size == 0

    def test_augment_passthrough_benchmark(self, cache_setup):
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        kwargs = {"prune": True}
        assert cache.augment_kwargs(net, energy, radio, "benchmark",
                                    kwargs) is kwargs
        assert len(cache) == 0

    def test_augment_passthrough_without_delta(self, cache_setup):
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        kwargs = {"K": 2}
        assert cache.augment_kwargs(net, energy, radio, "algorithm3",
                                    kwargs) is kwargs

    def test_augment_algorithm2_injects_sites(self, cache_setup):
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        out = cache.augment_kwargs(net, energy, radio, "algorithm2",
                                   {"delta": 25.0})
        assert out["sites"] is cache.sites(net, radio, 25.0)
        assert "graph" not in out

    def test_augment_algorithm1_injects_graph_and_conflicts(self,
                                                            cache_setup):
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        out = cache.augment_kwargs(net, energy, radio, "algorithm1",
                                   {"delta": 25.0})
        assert out["sites"] is cache.sites(net, radio, 25.0)
        assert out["graph"] is cache.graph(net, radio, 25.0, energy)
        assert out["conflict_neighbors"] is cache.conflict_neighbors(
            net, radio, 25.0)

    def test_resolve_cache(self):
        assert resolve_cache(False) is None
        assert resolve_cache(None) is None
        fresh = resolve_cache(True)
        assert isinstance(fresh, ArtifactCache)
        owned = ArtifactCache()
        assert resolve_cache(owned) is owned
        with pytest.raises(TypeError):
            resolve_cache("yes")


def det_rows_sans_perf(result):
    """Deterministic rows with the engine-specific perf block removed.

    The batch engine counts work differently from the per-cell kernel
    (union dirty-set rescoring, no ``sites_rescored``), so cross-engine
    comparisons drop perf; everything else must be bitwise-equal.
    """
    rows = []
    for row in result.rows:
        det = row.deterministic_dict()
        det.pop("perf", None)
        rows.append(det)
    return rows


class TestBatchColumns:
    """``batch_columns=True`` plans eligible columns with engine='batch'."""

    @pytest.fixture(scope="class")
    def fig5_plain(self, tiny_config):
        return run_fig5(tiny_config, jobs=1)

    @pytest.fixture(scope="class")
    def fig5_batch(self, tiny_config):
        return run_fig5(tiny_config, jobs=1, batch_columns=True)

    def test_sequential_matches_per_cell(self, fig5_plain, fig5_batch):
        assert det_rows_sans_perf(fig5_batch) == det_rows_sans_perf(
            fig5_plain)

    def test_eligible_rows_use_batch_engine(self, fig5_batch):
        engines = {row.algorithm: row.perf["engine"]
                   for row in fig5_batch.rows if row.perf}
        assert engines["Algorithm 2"] == "batch"
        assert engines["Algorithm 3 (K=2)"] == "batch"

    def test_meta_counts_column_cells(self, tiny_config, fig5_batch):
        # 2 eligible specs (Algorithm 2/3) x 2 capacities.
        assert fig5_batch.meta["batch_columns"] == \
            2 * len(tiny_config.capacity_sweep)

    def test_parallel_matches_sequential(self, tiny_config, fig5_batch):
        par = run_fig5(tiny_config, jobs=2, batch_columns=True)
        assert det_rows(par) == det_rows(fig5_batch)
        assert par.meta["batch_columns"] == fig5_batch.meta["batch_columns"]

    def test_fig4_batch_columns_is_noop(self, tiny_config):
        # The swept δ changes every cell's kwargs, so nothing batches.
        plain = run_fig4(tiny_config, jobs=1)
        batch = run_fig4(tiny_config, jobs=1, batch_columns=True)
        assert det_rows(batch) == det_rows(plain)
        assert batch.meta["batch_columns"] == 0

    def test_cache_off_matches(self, tiny_config, fig5_batch):
        uncached = run_fig5(tiny_config, jobs=1, batch_columns=True,
                            cache=False)
        assert det_rows(uncached) == det_rows(fig5_batch)


class TestBatchableColumn:
    @staticmethod
    def _fig5_kwargs(cfg, value, spec):
        kwargs = dict(spec.kwargs)
        if spec.method != "benchmark":
            kwargs["delta"] = cfg.delta
        return kwargs

    def test_capacity_column_eligible(self, tiny_config):
        make_energy = lambda cfg, v: cfg.energy_model(capacity=v)  # noqa: E731
        for spec in (AlgoSpec("Alg 2", "algorithm2", {}),
                     AlgoSpec("Alg 3", "algorithm3", {"K": 2})):
            assert batchable_column(
                tiny_config, spec, tiny_config.capacity_sweep,
                make_energy, self._fig5_kwargs)

    def test_benchmark_not_eligible(self, tiny_config):
        assert not batchable_column(
            tiny_config, AlgoSpec("Bench", "benchmark", {}),
            tiny_config.capacity_sweep,
            lambda cfg, v: cfg.energy_model(capacity=v),
            self._fig5_kwargs)

    def test_swept_kwargs_not_eligible(self, tiny_config):
        def swept_delta(cfg, value, spec):
            return {"delta": value}
        assert not batchable_column(
            tiny_config, AlgoSpec("Alg 2", "algorithm2", {}),
            tiny_config.delta_sweep,
            lambda cfg, v: cfg.energy_model(), swept_delta)

    def test_varying_rates_not_eligible(self, tiny_config):
        from repro.energy.model import EnergyModel

        def rate_sweep(cfg, v):
            return EnergyModel(capacity=cfg.capacity, hover_power=v,
                               travel_power=cfg.travel_power,
                               speed=cfg.speed)

        assert not batchable_column(
            tiny_config, AlgoSpec("Alg 2", "algorithm2", {}),
            (100.0, 200.0), rate_sweep, self._fig5_kwargs)

    def test_christofides_not_eligible(self, tiny_config):
        spec = AlgoSpec("Alg 2", "algorithm2",
                        {"tsp_mode": "christofides"})
        assert not batchable_column(
            tiny_config, spec, tiny_config.capacity_sweep,
            lambda cfg, v: cfg.energy_model(capacity=v),
            self._fig5_kwargs)


class TestAlgorithm1PrebuiltInputs:
    def test_prebuilt_inputs_give_identical_tour(self, cache_setup):
        net, radio, energy = cache_setup
        fresh = plan_algorithm1(net, energy, radio, delta=25.0,
                                solver="greedy")
        sites = build_hovering_sites(net, radio, 25.0)
        graph = build_auxiliary_graph(sites, energy)
        cached = plan_algorithm1(net, energy, radio, delta=25.0,
                                 solver="greedy", sites=sites, graph=graph)
        assert cached.collected_volume == fresh.collected_volume
        np.testing.assert_array_equal(cached.points, fresh.points)
        np.testing.assert_array_equal(cached.collected, fresh.collected)

    def test_graph_with_wrong_rates_rejected(self, cache_setup):
        net, radio, energy = cache_setup
        sites = build_hovering_sites(net, radio, 25.0)
        other = reduced_settings().energy_model()
        stale = build_auxiliary_graph(
            sites, type(other)(capacity=other.capacity,
                               hover_power=other.hover_power * 2,
                               travel_power=other.travel_power,
                               speed=other.speed))
        with pytest.raises(InvalidParameterError, match="energy rates"):
            plan_algorithm1(net, energy, radio, delta=25.0, graph=stale)

    def test_mismatched_sites_and_graph_rejected(self, cache_setup):
        net, radio, energy = cache_setup
        sites = build_hovering_sites(net, radio, 25.0)
        other_sites = build_hovering_sites(net, radio, 40.0)
        graph = build_auxiliary_graph(other_sites, energy)
        with pytest.raises(InvalidParameterError):
            plan_algorithm1(net, energy, radio, delta=25.0,
                            sites=sites, graph=graph)


# --------------------------------------------------------------------- #
# Run-ledger integration (PR 8): shard merging, sequential/parallel
# emission, and the jobs-independence of ambient worker metrics.
# --------------------------------------------------------------------- #

from repro.obs.ledger import Ledger, get_ledger, ledger_active, set_ledger  # noqa: E402
from repro.obs.metrics import MetricsRegistry, get_metrics, metrics_scope  # noqa: E402
from repro.obs.record import RunRecord  # noqa: E402
from repro.obs.shards import merge_ledger_shards  # noqa: E402


@pytest.fixture(autouse=True)
def ambient_obs_off():
    """Ledger and ambient metrics start and end disabled in every test."""
    prev_ledger = set_ledger(None)
    prev_metrics = get_metrics()
    yield
    set_ledger(prev_ledger)
    from repro.obs.metrics import set_metrics
    set_metrics(prev_metrics)


def ledger_events(ledger):
    counts = {}
    for rec in ledger.records():
        counts[rec.event] = counts.get(rec.event, 0) + 1
    return counts


class TestLedgerShardsUnit:
    @staticmethod
    def _record(cell, instance, label="Alg 2"):
        return RunRecord(event="planner.call", label=label,
                         config_hash=f"h{cell}",
                         extra={"cell": cell, "instance": instance})

    def test_ledger_shard_path_naming(self, tmp_path):
        path = shard_path(tmp_path, 4242, kind="ledger")
        assert path.name == "ledger-shard-4242.jsonl"

    def test_list_shards_filters_by_kind(self, tmp_path):
        Ledger(shard_path(tmp_path, 1, kind="ledger")).record(
            self._record(0, 0))
        append_shard([{"id": 0, "parent": None, "name": "runner.cell",
                       "t_start": 0.0, "t_end": 1.0, "attrs": {}}],
                     shard_path(tmp_path, 1))
        assert [p.name for p in list_shards(tmp_path)] == \
            ["trace-shard-1.jsonl"]
        assert [p.name for p in list_shards(tmp_path, kind="ledger")] == \
            ["ledger-shard-1.jsonl"]

    def test_merge_orders_by_cell_then_instance(self, tmp_path):
        # Shard filenames sort opposite to cell order: the merge must
        # still produce canonical (cell, instance) order.
        high = Ledger(shard_path(tmp_path, 111, kind="ledger"))
        high.record(self._record(3, 1))
        high.record(self._record(3, 0))
        low = Ledger(shard_path(tmp_path, 999, kind="ledger"))
        low.record(self._record(0, 0))
        merged = merge_ledger_shards(tmp_path)
        assert [(r["extra"]["cell"], r["extra"]["instance"])
                for r in merged] == [(0, 0), (3, 0), (3, 1)]

    def test_merge_accepts_explicit_paths(self, tmp_path):
        path = shard_path(tmp_path, 1, kind="ledger")
        Ledger(path).record(self._record(0, 0))
        assert len(merge_ledger_shards([path])) == 1

    def test_merge_empty_dir(self, tmp_path):
        assert merge_ledger_shards(tmp_path) == []

    def test_merged_records_round_trip(self, tmp_path):
        path = shard_path(tmp_path, 1, kind="ledger")
        original = self._record(2, 1)
        Ledger(path).record(original)
        [payload] = merge_ledger_shards(tmp_path)
        assert RunRecord.from_dict(payload) == original


class TestSequentialLedger:
    def test_rows_bitwise_identical_with_ledger_on(self, tiny_config,
                                                   fig3_seq):
        with ledger_active(Ledger()) as ledger:
            result = run_fig3(tiny_config, n_restarts=1, jobs=1)
        assert det_rows(result) == det_rows(fig3_seq)
        events = ledger_events(ledger)
        assert events["sweep.cell"] == len(result.rows)
        assert events["planner.call"] == \
            len(result.rows) * tiny_config.n_instances

    def test_cell_records_identify_the_campaign(self, tiny_config):
        with ledger_active(Ledger()) as ledger:
            result = run_fig3(tiny_config, n_restarts=1, jobs=1)
        cells = [r for r in ledger.records() if r.event == "sweep.cell"]
        labels = {row.algorithm for row in result.rows}
        for i, rec in enumerate(cells):
            assert rec.label in labels
            assert rec.jobs == 1
            assert len(rec.config_hash) == 16
            assert rec.extra["cell"] == i
            assert rec.extra["param_name"] == "capacity"
            assert rec.extra["param_value"] in tiny_config.capacity_sweep
            assert rec.extra["n_instances"] == tiny_config.n_instances
            assert rec.wall_s >= 0.0

    def test_no_ledger_emits_nothing(self, tiny_config):
        result = run_fig3(tiny_config, n_restarts=1, jobs=1)
        assert get_ledger() is None
        assert "ledger_records" not in result.meta

    def test_batch_columns_emit_column_records(self, tiny_config):
        with ledger_active(Ledger()) as ledger:
            result = run_fig5(tiny_config, jobs=1, batch_columns=True)
        events = ledger_events(ledger)
        assert events["sweep.cell"] == len(result.rows)
        assert events.get("sweep.column", 0) > 0
        columns = [r for r in ledger.records()
                   if r.event == "sweep.column"]
        for rec in columns:
            assert rec.extra["width"] == len(tiny_config.capacity_sweep)


class TestParallelLedger:
    def test_worker_records_merge_into_parent(self, tiny_config, fig3_seq):
        with ledger_active(Ledger()) as ledger:
            par = run_fig3(tiny_config, n_restarts=1, jobs=2)
        assert det_rows(par) == det_rows(fig3_seq)
        events = ledger_events(ledger)
        expected_calls = len(par.rows) * tiny_config.n_instances
        assert events["planner.call"] == expected_calls
        assert events["sweep.cell"] == len(par.rows)
        assert par.meta["ledger_records"] == expected_calls

    def test_parallel_ledger_matches_sequential_deterministically(
            self, tiny_config):
        def planner_views(jobs):
            with ledger_active(Ledger()) as ledger:
                run_fig3(tiny_config, n_restarts=1, jobs=jobs)
            views = []
            for rec in ledger.records():
                if rec.event != "planner.call":
                    continue
                det = rec.deterministic_dict()
                det.pop("jobs")
                views.append(det)
            return sorted(views, key=lambda d: sorted(d.items().__str__()))

        seq = planner_views(1)
        par = planner_views(2)
        assert len(seq) == len(par) > 0
        assert sorted(map(str, seq)) == sorted(map(str, par))

    def test_parallel_without_ledger_unchanged(self, tiny_config):
        result = run_fig3(tiny_config, n_restarts=1, jobs=2)
        assert "ledger_records" not in result.meta
        assert get_ledger() is None


class TestJobsIndependentMetrics:
    """Satellite (a): worker MetricsRegistry snapshots merge into the
    parent, so ambient counter totals are identical for jobs=1 vs 2."""

    def _counters(self, tiny_config, jobs):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            run_fig3(tiny_config, n_restarts=1, jobs=jobs)
        return registry.counter_values()

    def test_counters_equal_jobs1_vs_jobs2(self, tiny_config):
        seq = self._counters(tiny_config, 1)
        par = self._counters(tiny_config, 2)
        assert seq == par
        assert any(name.startswith("kernel.") for name in seq)
        # GRASP work counters may legitimately read 0 (no dedup hits, no
        # warm starts in a cold sweep); restart counts never do.
        assert all(value >= 0 for value in seq.values())
        assert seq.get("kernel.grasp.restarts", 0) > 0

    def test_fig5_kernel_counters_equal_and_timed(self, tiny_config):
        # Fig. 5 runs the kernel planners, so the fold also carries the
        # full insertion/rescore counters and their phase timers.
        def run(jobs):
            registry = MetricsRegistry()
            with metrics_scope(registry):
                run_fig5(tiny_config, jobs=jobs)
            return registry
        seq, par = run(1), run(2)
        assert seq.counter_values() == par.counter_values()
        assert seq.counter_values()["kernel.insertions"] > 0
        # Timers are wall-clock (nondeterministic) — present, positive,
        # but never part of the equality contract above.
        timers = par.timer_seconds()
        assert any(name.startswith("kernel.") for name in timers)
        assert all(v >= 0.0 for v in timers.values())

    def test_no_scope_accumulates_nothing(self, tiny_config):
        run_fig3(tiny_config, n_restarts=1, jobs=1)
        assert get_metrics() is None
