"""Tests for repro.core.reduce (candidate-site reduction pre-pass).

Pins the module's two load-bearing contracts:

* the ``safe`` level is *plan-preserving*: Algorithms 2/3 produce
  bitwise-identical tours with and without it, on every engine;
* the survivor→original index map is a faithful row slice (strictly
  increasing, round-trippable, -1 for dropped sites).

The aggressive stages are checked on hand-crafted coverage matrices
where the expected survivor set is knowable by inspection.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.algorithm1 import plan_algorithm1
from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.auxgraph import build_auxiliary_graph
from repro.core.hovering import HoveringSites, build_hovering_sites
from repro.core.kernel import ENGINES
from repro.core.reduce import (
    REDUCTION_LEVELS,
    ReducedSites,
    SiteReduction,
    attach_reduction_meta,
    reduce_sites,
    resolve_reduction,
)
from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.generator import NetworkGenerator
from repro.network.sensor_network import SensorNetwork
from repro.utils.errors import InvalidParameterError


def assert_same_tour(a, b):
    """Bitwise tour equality (points, sojourns, collected, counts)."""
    assert np.array_equal(a.points, b.points)
    assert np.array_equal(a.sojourns, b.sojourns)
    assert np.array_equal(a.collected, b.collected)
    assert a.meta["n_visited"] == b.meta["n_visited"]


def crafted_sites(radio, cov_matrix, points=None, awards=None,
                  volumes=None, delta=10.0):
    """HoveringSites with a hand-written coverage matrix.

    The geometry is synthetic (the stages only read points through
    distances), which lets each aggressive stage be tested on a coverage
    structure where the right answer is obvious.
    """
    cov = np.asarray(cov_matrix, dtype=bool)
    m, n = cov.shape
    if volumes is None:
        volumes = np.full(n, 100.0)
    volumes = np.asarray(volumes, dtype=float)
    positions = np.column_stack([np.linspace(10.0, 30.0, n),
                                 np.full(n, 10.0)])
    net = SensorNetwork(positions=positions, volumes=volumes,
                        depot=np.zeros(2), region=Region.square(400.0))
    if points is None:
        points = np.column_stack([np.linspace(10.0, 30.0, m),
                                  np.full(m, 12.0)])
    points = np.asarray(points, dtype=float)
    if awards is None:
        awards = cov @ volumes
    awards = np.asarray(awards, dtype=float)
    return HoveringSites(points=points, cov_matrix=cov, awards=awards,
                         hover_times=awards / radio.bandwidth,
                         network=net, radio=radio, delta=delta)


class TestSiteReductionConfig:
    def test_presets(self):
        off = resolve_reduction(None)
        assert not off.enabled and off.level == "off"
        safe = resolve_reduction("safe")
        assert safe.enabled and safe.zero_award and safe.unreachable
        assert not (safe.dominated or safe.cluster or safe.corridor)
        assert safe.capacity_dependent
        agg = resolve_reduction("aggressive")
        assert agg.dominated and agg.cluster and agg.corridor

    def test_resolve_accepts_dict_and_instance(self):
        cfg = resolve_reduction("safe")
        assert resolve_reduction(cfg) is cfg
        assert resolve_reduction(cfg.as_dict()) == cfg

    def test_resolve_rejects_garbage(self):
        with pytest.raises(InvalidParameterError):
            resolve_reduction("extreme")
        with pytest.raises(InvalidParameterError):
            resolve_reduction(3.14)
        with pytest.raises(InvalidParameterError):
            resolve_reduction({"level": "safe", "typo_knob": 1})

    @pytest.mark.parametrize("kwargs", [
        {"cluster_jaccard": 0.0}, {"cluster_jaccard": 1.5},
        {"cluster_radius_factor": -1.0}, {"corridor_budget_factor": 0.0},
        {"level": ""},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(InvalidParameterError):
            SiteReduction(**kwargs)

    @pytest.mark.parametrize("level", REDUCTION_LEVELS)
    def test_transport_round_trips_and_is_json_safe(self, level):
        cfg = resolve_reduction(level)
        wire = cfg.transport()
        assert wire == level          # presets ship as their name
        json.dumps(wire)
        assert resolve_reduction(wire) == cfg

    def test_custom_transport_is_dict(self):
        cfg = SiteReduction(level="custom", dominated=True,
                            cluster_jaccard=0.9)
        wire = cfg.transport()
        assert isinstance(wire, dict)
        json.dumps(wire)
        assert resolve_reduction(wire) == cfg

    def test_key_distinguishes_configs(self):
        keys = {resolve_reduction(lvl).key() for lvl in REDUCTION_LEVELS}
        assert len(keys) == 3
        tweaked = SiteReduction(level="safe", zero_award=True,
                                unreachable=True, cluster_jaccard=0.5)
        assert tweaked.key() != resolve_reduction("safe").key()


class TestReducedSites:
    @pytest.fixture
    def reduced(self, small_net, radio, energy):
        sites = build_hovering_sites(small_net, radio, 25.0)
        return sites, reduce_sites(sites, "safe", energy=energy)

    def test_is_a_row_slice(self, reduced):
        sites, red = reduced
        assert isinstance(red, HoveringSites)
        assert red.n_original == sites.n_sites
        assert np.all(np.diff(red.survivors) > 0)
        assert np.array_equal(red.points, sites.points[red.survivors])
        assert np.array_equal(red.cov_matrix,
                              sites.cov_matrix[red.survivors])
        assert np.array_equal(red.awards, sites.awards[red.survivors])

    def test_index_maps_round_trip(self, reduced):
        _, red = reduced
        idx = np.arange(red.n_sites)
        assert np.array_equal(red.from_original(red.to_original(idx)), idx)
        back = red.from_original(np.arange(red.n_original))
        dropped = np.setdiff1d(np.arange(red.n_original), red.survivors)
        assert np.all(back[dropped] == -1)
        assert np.array_equal(back[red.survivors], idx)

    def test_index_maps_reject_out_of_range(self, reduced):
        _, red = reduced
        with pytest.raises(InvalidParameterError):
            red.to_original([red.n_sites])
        with pytest.raises(InvalidParameterError):
            red.from_original([-1])

    def test_stats_and_meta_block(self, reduced):
        _, red = reduced
        assert red.stats["sites_in"] == red.n_original
        assert red.stats["sites_out"] == red.n_sites
        block = red.meta_block()
        assert block["level"] == "safe"
        assert block["n_reduced"] <= block["n_original"]
        json.dumps(block)

    def test_reduce_is_not_idempotent(self, reduced):
        _, red = reduced
        with pytest.raises(InvalidParameterError):
            reduce_sites(red, "safe")

    def test_attach_meta_noop_for_plain_sites(self, small_net, radio):
        sites = build_hovering_sites(small_net, radio, 25.0)
        meta = {"n_candidates": sites.n_sites}
        attach_reduction_meta(meta, sites)
        assert "site_reduction" not in meta and "perf" not in meta


class TestSafeStages:
    def test_zero_award_sites_dropped(self, radio):
        sites = crafted_sites(radio, [[1, 0], [0, 1], [0, 0]],
                              volumes=[100.0, 0.0])
        red = reduce_sites(sites, SiteReduction(level="z", zero_award=True))
        # Site 1 covers only the empty sensor, site 2 covers nothing.
        assert red.survivors.tolist() == [0]
        assert red.stats["zero_award"] == 2

    def test_unreachable_matches_explicit_bound(self, small_net, radio):
        sites = build_hovering_sites(small_net, radio, 20.0)
        energy = EnergyModel(capacity=4e3, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        red = reduce_sites(sites, "safe", energy=energy)
        d0 = np.linalg.norm(sites.points - small_net.depot[None, :], axis=1)
        reachable = (2.0 * d0 * energy.travel_cost_per_meter
                     <= energy.capacity + 1e-9)
        expected = np.flatnonzero(reachable & (sites.awards > 0.0))
        assert np.array_equal(red.survivors, expected)
        assert red.stats["unreachable"] > 0

    def test_unreachable_skipped_without_energy(self, small_net, radio):
        sites = build_hovering_sites(small_net, radio, 20.0)
        red = reduce_sites(sites, "safe")
        assert red.stats["unreachable"] == 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_safe_is_plan_preserving_alg2(self, small_net, radio, energy,
                                          engine):
        base = plan_algorithm2(small_net, energy, radio, delta=20.0,
                               engine=engine)
        red = plan_algorithm2(small_net, energy, radio, delta=20.0,
                              engine=engine, site_reduction="safe")
        assert_same_tour(base, red)
        assert base.meta["iterations"] == red.meta["iterations"]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_safe_is_plan_preserving_alg3(self, small_net, radio, energy,
                                          engine):
        base = plan_algorithm3(small_net, energy, radio, delta=20.0, K=2,
                               engine=engine)
        red = plan_algorithm3(small_net, energy, radio, delta=20.0, K=2,
                              engine=engine, site_reduction="safe")
        assert_same_tour(base, red)

    def test_safe_preserving_greedy_alg1(self, small_net, radio, energy):
        # Only the greedy solver is renumbering-invariant (the GRASP
        # seeded-RNG stream shifts when node ids renumber).
        base = plan_algorithm1(small_net, energy, radio, delta=40.0,
                               solver="greedy")
        red = plan_algorithm1(small_net, energy, radio, delta=40.0,
                              solver="greedy", site_reduction="safe")
        assert_same_tour(base, red)


class TestAggressiveStages:
    def test_dominated_subset_dropped(self, radio):
        # Site 0 ⊂ site 1; site 2 covers its own sensor.
        sites = crafted_sites(radio, [[1, 1, 0, 0],
                                      [1, 1, 1, 0],
                                      [0, 0, 0, 1]])
        red = reduce_sites(sites, SiteReduction(level="d", dominated=True))
        assert red.survivors.tolist() == [1, 2]
        assert red.stats["dominated"] == 1

    def test_equal_coverage_keeps_lowest_index(self, radio):
        sites = crafted_sites(radio, [[1, 1], [1, 1], [1, 1]])
        red = reduce_sites(sites, SiteReduction(level="d", dominated=True))
        assert red.survivors.tolist() == [0]

    def test_cluster_keeps_max_award_representative(self, radio):
        # Three co-located sites with identical coverage (Jaccard 1);
        # site 1 carries the largest award and must be the representative.
        cov = [[1, 1, 0], [1, 1, 0], [1, 1, 0]]
        points = np.array([[10.0, 0.0], [11.0, 0.0], [12.0, 0.0]])
        sites = crafted_sites(radio, cov, points=points, delta=10.0,
                              awards=[200.0, 300.0, 200.0])
        red = reduce_sites(sites, SiteReduction(level="c", cluster=True))
        assert red.survivors.tolist() == [1]
        assert red.stats["clustered"] == 2

    def test_jaccard_below_threshold_not_clustered(self, radio):
        # Jaccard({0,1}, {0,1,2}) = 2/3 < 0.75: near but not duplicate.
        cov = [[1, 1, 0], [1, 1, 1]]
        points = np.array([[10.0, 0.0], [11.0, 0.0]])
        sites = crafted_sites(radio, cov, points=points, delta=10.0)
        red = reduce_sites(sites, SiteReduction(level="c", cluster=True))
        assert red.n_sites == 2
        loose = SiteReduction(level="c", cluster=True, cluster_jaccard=0.5)
        assert reduce_sites(sites, loose).survivors.tolist() == [1]

    def test_cluster_respects_radius(self, radio):
        # Same coverage but geometrically far apart: no cluster.
        cov = [[1, 1], [1, 1]]
        points = np.array([[0.0, 0.0], [500.0, 0.0]])
        sites = crafted_sites(radio, cov, points=points, delta=10.0)
        red = reduce_sites(sites, SiteReduction(level="c", cluster=True))
        assert red.n_sites == 2

    def test_corridor_drops_far_redundant_site(self, radio):
        # Sites 0-2 near the depot cover everything (the skeleton); site 3
        # is redundant coverage parked 5 km away — far beyond the
        # 2·R0 = 100 m detour budget.
        cov = [[1, 1, 0], [0, 1, 1], [1, 0, 1], [0, 1, 0]]
        points = np.array([[10.0, 0.0], [20.0, 0.0], [30.0, 0.0],
                           [5000.0, 5000.0]])
        sites = crafted_sites(radio, cov, points=points)
        red = reduce_sites(sites, SiteReduction(level="k", corridor=True))
        assert 3 not in red.survivors.tolist()
        assert red.stats["corridor"] == 1

    def test_corridor_skeleton_retains_sole_coverage(self, radio):
        # Site 1 is the only coverage of sensor 2: the set-cover skeleton
        # must include it no matter how far off the corridor it sits.
        cov = [[1, 1, 0], [0, 0, 1], [1, 1, 0]]
        points = np.array([[10.0, 0.0], [5000.0, 5000.0], [20.0, 0.0]])
        sites = crafted_sites(radio, cov, points=points)
        red = reduce_sites(sites, SiteReduction(level="k", corridor=True))
        assert 1 in red.survivors.tolist()

    def test_repair_restores_orphaned_sensor(self, radio):
        # A loose Jaccard threshold clusters sites 0/1 and keeps site 0
        # (tie on award to the lowest index), orphaning sensor 3 — the
        # repair step must re-add site 1.
        cov = [[1, 1, 1, 0], [1, 1, 0, 1]]
        points = np.array([[10.0, 0.0], [11.0, 0.0]])
        sites = crafted_sites(radio, cov, points=points, delta=10.0,
                              awards=[300.0, 300.0])
        loose = SiteReduction(level="c", cluster=True, cluster_jaccard=0.5)
        red = reduce_sites(sites, loose)
        assert red.stats["clustered"] == 1
        assert red.stats["repaired"] == 1
        assert red.survivors.tolist() == [0, 1]
        assert red.cov_matrix.any(axis=0).all()

    def test_aggressive_never_orphans_reachable_sensors(self, small_net,
                                                        radio, energy):
        sites = build_hovering_sites(small_net, radio, 15.0)
        safe = reduce_sites(sites, "safe", energy=energy)
        agg = reduce_sites(sites, "aggressive", energy=energy)
        coverable_safe = safe.cov_matrix.any(axis=0)
        coverable_agg = agg.cov_matrix.any(axis=0)
        assert np.array_equal(coverable_safe, coverable_agg)

    def test_aggressive_shrinks_hard(self, small_net, radio, energy):
        sites = build_hovering_sites(small_net, radio, 10.0)
        red = reduce_sites(sites, "aggressive", energy=energy)
        assert red.n_sites < sites.n_sites / 3


class TestPlannerIntegration:
    def test_meta_surfaces_reduction(self, small_net, radio, energy):
        tour = plan_algorithm2(small_net, energy, radio, delta=20.0,
                               site_reduction="safe")
        block = tour.meta["site_reduction"]
        assert block["level"] == "safe"
        assert tour.meta["n_candidates"] == block["n_reduced"]
        reduce_perf = tour.meta["perf"]["reduce"]
        assert reduce_perf["sites_in"] == block["n_original"]
        assert all(isinstance(v, int) for v in reduce_perf.values())

    def test_off_leaves_meta_untouched(self, small_net, radio, energy):
        tour = plan_algorithm2(small_net, energy, radio, delta=20.0)
        assert "site_reduction" not in tour.meta
        assert "reduce" not in tour.meta["perf"]

    def test_prereduced_sites_accepted(self, small_net, radio, energy):
        sites = build_hovering_sites(small_net, radio, 20.0)
        red = reduce_sites(sites, "safe", energy=energy)
        a = plan_algorithm2(small_net, energy, radio, delta=20.0, sites=red,
                            site_reduction="safe")
        b = plan_algorithm2(small_net, energy, radio, delta=20.0,
                            site_reduction="safe")
        assert_same_tour(a, b)

    def test_alg1_rejects_unreduced_prebuilt_graph(self, small_net, radio,
                                                   energy):
        sites = build_hovering_sites(small_net, radio, 40.0)
        graph = build_auxiliary_graph(sites, energy)
        with pytest.raises(InvalidParameterError):
            plan_algorithm1(small_net, energy, radio, delta=40.0,
                            sites=sites, graph=graph,
                            site_reduction="safe")

    def test_alg1_accepts_graph_over_reduced_sites(self, small_net, radio,
                                                   energy):
        sites = build_hovering_sites(small_net, radio, 40.0)
        red = reduce_sites(sites, "safe", energy=energy)
        graph = build_auxiliary_graph(red, energy)
        tour = plan_algorithm1(small_net, energy, radio, delta=40.0,
                               sites=red, graph=graph, solver="greedy",
                               site_reduction="safe")
        ref = plan_algorithm1(small_net, energy, radio, delta=40.0,
                              solver="greedy", site_reduction="safe")
        assert_same_tour(tour, ref)


class _Nets:
    """Lazily-built networks shared across hypothesis examples."""

    def __init__(self):
        self._cache = {}

    def get(self, seed, n):
        key = (seed, n)
        if key not in self._cache:
            gen = NetworkGenerator(Region.square(400.0),
                                   volume_range=(50.0, 500.0))
            self._cache[key] = gen.uniform(n, seed=seed)
        return self._cache[key]


_NETS = _Nets()


class TestSafeLosslessProperty:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 15), n=st.integers(6, 16),
           cap=st.sampled_from([4e3, 1e4, 3e4, 1e5]),
           engine=st.sampled_from(ENGINES))
    def test_safe_lossless_all_engines(self, radio, seed, n, cap, engine):
        net = _NETS.get(seed, n)
        energy = EnergyModel(capacity=cap, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        base = plan_algorithm2(net, energy, radio, delta=25.0,
                               engine=engine)
        red = plan_algorithm2(net, energy, radio, delta=25.0,
                              engine=engine, site_reduction="safe")
        assert_same_tour(base, red)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(0, 15), n=st.integers(6, 16),
           level=st.sampled_from(["safe", "aggressive"]),
           cap=st.sampled_from([4e3, 1e4, 3e4]))
    def test_survivor_map_round_trips(self, radio, seed, n, level, cap):
        net = _NETS.get(seed, n)
        energy = EnergyModel(capacity=cap, hover_power=150.0,
                             travel_power=100.0, speed=10.0)
        sites = build_hovering_sites(net, radio, 20.0)
        red = reduce_sites(sites, level, energy=energy)
        assert np.all(np.diff(red.survivors) > 0)
        idx = np.arange(red.n_sites)
        assert np.array_equal(red.from_original(red.to_original(idx)), idx)
        # The slice is faithful under any permutation of lookups.
        perm = np.random.default_rng(seed).permutation(red.n_sites)
        assert np.array_equal(red.to_original(perm),
                              red.survivors[perm])
        assert np.array_equal(
            sites.points[red.to_original(perm)], red.points[perm])
