"""Tests for the simulator's distance-dependent rate path."""

import numpy as np
import pytest

from repro.core.algorithm2 import plan_algorithm2
from repro.radio.link import DistanceRateModel, RadioModel
from repro.sim.simulator import simulate_mission


@pytest.fixture
def elevated_radio():
    return RadioModel(bandwidth=150.0, transmission_range=60.0, altitude=20.0)


@pytest.fixture
def tour(small_net, elevated_radio, energy):
    return plan_algorithm2(small_net, energy, elevated_radio, delta=30.0)


class TestRateModelExecution:
    def test_default_saturation_matches_constant(self, tour, elevated_radio):
        nominal = simulate_mission(tour, elevated_radio)
        rm = DistanceRateModel(base=elevated_radio, exponent=2.0)
        realistic = simulate_mission(tour, elevated_radio, rate_model=rm)
        assert realistic.collected_volume == pytest.approx(
            nominal.collected_volume)

    def test_partial_saturation_collects_less_or_equal(self, tour,
                                                       elevated_radio):
        rm = DistanceRateModel(base=elevated_radio, exponent=2.0,
                               saturation_distance=30.0)
        nominal = simulate_mission(tour, elevated_radio)
        realistic = simulate_mission(tour, elevated_radio, rate_model=rm)
        assert realistic.collected_volume <= nominal.collected_volume + 1e-6

    def test_energy_unaffected_by_rate_model(self, tour, elevated_radio):
        # Sojourns are fixed by the plan; only the uploads change.
        rm = DistanceRateModel(base=elevated_radio, exponent=2.0,
                               saturation_distance=30.0)
        nominal = simulate_mission(tour, elevated_radio)
        realistic = simulate_mission(tour, elevated_radio, rate_model=rm)
        assert realistic.total_energy == pytest.approx(nominal.total_energy)

    def test_per_sensor_uploads_bounded_by_rate(self, tour, elevated_radio,
                                                small_net):
        rm = DistanceRateModel(base=elevated_radio, exponent=2.0,
                               saturation_distance=30.0)
        trace = simulate_mission(tour, elevated_radio, rate_model=rm)
        for h in trace.hovers:
            pos = np.array(h.position)
            for v, mb in h.uploads.items():
                g = float(np.hypot(*(small_net.positions[v] - pos)))
                rate = float(rm.rate_at(np.asarray([g]))[0])
                assert mb <= rate * h.duration + 1e-9

    def test_stronger_decay_collects_less(self, tour, elevated_radio):
        mild = DistanceRateModel(base=elevated_radio, exponent=1.0,
                                 saturation_distance=30.0)
        harsh = DistanceRateModel(base=elevated_radio, exponent=3.0,
                                  saturation_distance=30.0)
        v_mild = simulate_mission(tour, elevated_radio,
                                  rate_model=mild).collected_volume
        v_harsh = simulate_mission(tour, elevated_radio,
                                   rate_model=harsh).collected_volume
        assert v_harsh <= v_mild + 1e-6
