"""Direct unit tests for the vectorised orienteering kernels."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.orienteering._vector import (
    all_insertion_deltas,
    conflict_neighbors,
    drop_worst,
    greedy_fill,
    swap_pass,
)
from repro.orienteering.problem import OrienteeringInstance
from repro.tsp.construct import insertion_delta


def make_instance(rng, n=9, budget=1e6, groups=None):
    pts = rng.uniform(0, 100, (n, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, n)
    awards[0] = 0.0
    return OrienteeringInstance(costs=costs, awards=awards, budget=budget,
                                depot=0, conflict_groups=groups)


class TestAllInsertionDeltas:
    def test_matches_scalar_reference(self, rng):
        inst = make_instance(rng)
        tour = np.array([0, 3, 6, 2])
        deltas, positions = all_insertion_deltas(tour, inst.costs)
        for v in range(inst.n_nodes):
            if v in tour:
                continue
            ref_delta, ref_pos = insertion_delta(tour, inst.costs, v)
            assert deltas[v] == pytest.approx(ref_delta)
            assert positions[v] == ref_pos

    def test_empty_tour(self, rng):
        inst = make_instance(rng)
        deltas, _ = all_insertion_deltas(np.empty(0, dtype=int), inst.costs)
        np.testing.assert_array_equal(deltas, 0.0)

    def test_singleton_tour(self, rng):
        inst = make_instance(rng)
        deltas, _ = all_insertion_deltas(np.array([0]), inst.costs)
        np.testing.assert_allclose(deltas, 2.0 * inst.costs[0])

    def test_positions_valid_range(self, rng):
        inst = make_instance(rng)
        tour = np.array([0, 4, 7])
        _, positions = all_insertion_deltas(tour, inst.costs)
        assert (positions >= 1).all() and (positions <= len(tour)).all()


class TestGreedyFill:
    def test_grows_feasibly(self, rng):
        inst = make_instance(rng, budget=250.0)
        tour = greedy_fill(inst, np.array([0]))
        assert inst.is_feasible(tour)
        assert len(tour) >= 1

    def test_respects_blocked_mask(self, rng):
        inst = make_instance(rng, budget=1e6)
        blocked = np.zeros(inst.n_nodes, dtype=bool)
        blocked[3] = True
        tour = greedy_fill(inst, np.array([0]), blocked=blocked)
        assert 3 not in tour

    def test_zero_award_nodes_skipped(self, rng):
        inst = make_instance(rng, budget=1e6)
        tour = greedy_fill(inst, np.array([0]))
        # Node 0 is the depot (award 0); all others have positive award
        # and a huge budget, so everything else is included.
        assert len(tour) == inst.n_nodes

    def test_starting_tour_preserved(self, rng):
        inst = make_instance(rng, budget=1e6)
        start = np.array([0, 5])
        tour = greedy_fill(inst, start)
        assert tour[0] == 0 and 5 in tour

    def test_rcl_randomisation_feasible(self, rng):
        inst = make_instance(rng, budget=300.0)
        tour = greedy_fill(inst, np.array([0]),
                           rng=np.random.default_rng(3), rcl_size=3)
        assert inst.is_feasible(tour)


class TestSwapPass:
    def test_never_decreases_award(self, rng):
        inst = make_instance(rng, budget=280.0)
        tour = greedy_fill(inst, np.array([0]))
        swapped = swap_pass(inst, tour)
        assert inst.tour_award(swapped) >= inst.tour_award(tour) - 1e-9
        assert inst.is_feasible(swapped)

    def test_preserves_depot(self, rng):
        inst = make_instance(rng, budget=280.0)
        tour = greedy_fill(inst, np.array([0]))
        swapped = swap_pass(inst, tour)
        assert swapped[0] == 0

    def test_short_tour_unchanged(self, rng):
        inst = make_instance(rng)
        out = swap_pass(inst, np.array([0]))
        np.testing.assert_array_equal(out, [0])

    def test_finds_obvious_upgrade(self, rng):
        # Tour holds a low-award node; a colocated high-award node exists.
        pts = np.array([[0, 0], [10, 0], [10, 0.01], [90, 90]])
        costs = pairwise_distances(pts)
        inst = OrienteeringInstance(costs=costs,
                                    awards=[0.0, 1.0, 9.0, 2.0],
                                    budget=25.0, depot=0)
        swapped = swap_pass(inst, np.array([0, 1]))
        assert 2 in swapped and 1 not in swapped


class TestDropWorst:
    def test_removes_worst_ratio(self, rng):
        inst = make_instance(rng, budget=1e6)
        tour = greedy_fill(inst, np.array([0]))
        reduced, removed = drop_worst(inst, tour)
        assert removed in tour and removed not in reduced
        assert len(reduced) == len(tour) - 1

    def test_never_removes_depot(self, rng):
        inst = make_instance(rng, budget=1e6)
        tour = greedy_fill(inst, np.array([0]))
        reduced, _ = drop_worst(inst, tour)
        assert reduced[0] == 0

    def test_depot_only_no_op(self, rng):
        inst = make_instance(rng)
        reduced, removed = drop_worst(inst, np.array([0]))
        assert removed == -1
        np.testing.assert_array_equal(reduced, [0])


class TestConflictNeighbors:
    def test_none_when_unconstrained(self, rng):
        inst = make_instance(rng)
        assert conflict_neighbors(inst) is None

    def test_reflects_groups(self, rng):
        inst = make_instance(rng, groups=[np.array([1, 2, 3])])
        neigh = conflict_neighbors(inst)
        np.testing.assert_array_equal(sorted(neigh[1]), [2, 3])
        np.testing.assert_array_equal(sorted(neigh[2]), [1, 3])
        assert len(neigh[5]) == 0
