"""Tests for the CLI's --svg / --claims / report paths and __main__."""

import subprocess
import sys

import pytest

from repro.experiments.cli import main


class TestSvgFlag:
    def test_writes_panel_svgs(self, capsys, tmp_path):
        rc = main(["fig5", "--scale", "reduced", "--nodes", "20",
                   "--instances", "1", "--quiet", "--svg", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig5a_reduced.svg").exists()
        assert (tmp_path / "fig5b_reduced.svg").exists()
        svg = (tmp_path / "fig5a_reduced.svg").read_text()
        assert svg.startswith("<svg")

    def test_claims_flag_prints_table(self, capsys, tmp_path):
        rc = main(["fig5", "--scale", "reduced", "--nodes", "20",
                   "--instances", "1", "--quiet", "--claims"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "| C7 |" in out


class TestReportCommand:
    def test_report_from_results_dir(self, capsys, tmp_path):
        # Produce a results dir, then regenerate the report from it.
        rc = main(["fig5", "--scale", "reduced", "--nodes", "20",
                   "--instances", "1", "--quiet", "--out", str(tmp_path)])
        assert rc == 0
        capsys.readouterr()
        rc = main(["report", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out
        assert "claims pass" in out

    def test_report_missing_dir_fails(self, tmp_path):
        from repro.utils.errors import InvalidParameterError
        with pytest.raises(InvalidParameterError):
            main(["report", "--out", str(tmp_path / "nothing")])


class TestModuleEntryPoint:
    def test_python_m_invocation(self, tmp_path):
        # Smoke-test `python -m repro.experiments --help` end to end.
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "--help"],
            capture_output=True, text=True, timeout=120)
        assert proc.returncode == 0
        assert "repro-experiments" in proc.stdout


class TestSeedOverride:
    def test_seed_changes_results(self, capsys):
        rc = main(["fig5", "--scale", "reduced", "--nodes", "15",
                   "--instances", "1", "--quiet", "--seed", "1"])
        out1 = capsys.readouterr().out
        rc = main(["fig5", "--scale", "reduced", "--nodes", "15",
                   "--instances", "1", "--quiet", "--seed", "2"])
        out2 = capsys.readouterr().out
        assert rc == 0
        assert out1 != out2

    def test_same_seed_reproduces_volumes(self, capsys):
        # Wall-clock timings (panel b) vary run to run; the collected
        # volumes (panel a) must be byte-identical for the same seed.
        def volume_panel(text):
            return text.split("(b) Planning time")[0]

        main(["fig5", "--scale", "reduced", "--nodes", "15",
              "--instances", "1", "--quiet", "--seed", "3"])
        out1 = capsys.readouterr().out
        main(["fig5", "--scale", "reduced", "--nodes", "15",
              "--instances", "1", "--quiet", "--seed", "3"])
        out2 = capsys.readouterr().out
        assert volume_panel(out1) == volume_panel(out2)
