"""Documentation–code consistency checks.

A reproduction repo's documents rot silently; these tests pin the
load-bearing statements in README / DESIGN / EXPERIMENTS to the artifacts
and code they describe.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    path = ROOT / name
    assert path.exists(), f"{name} missing"
    return path.read_text()


class TestReadme:
    def test_examples_listed_exist(self):
        text = read("README.md")
        for match in re.finditer(r"examples/(\w+)\.py", text):
            assert (ROOT / "examples" / f"{match.group(1)}.py").exists(), \
                match.group(0)

    def test_docs_links_exist(self):
        text = read("README.md")
        for match in re.finditer(r"\((docs/\w+\.md|DESIGN\.md|EXPERIMENTS\.md)\)",
                                 text):
            assert (ROOT / match.group(1)).exists(), match.group(0)

    def test_planner_table_matches_registry(self):
        from repro import PLANNERS
        text = read("README.md")
        for method in PLANNERS:
            assert f"`{method}`" in text, method


class TestDesign:
    def test_mentioned_bench_modules_exist(self):
        text = read("DESIGN.md")
        for match in re.finditer(r"bench_\w+\.py", text):
            assert (ROOT / "benchmarks" / match.group(0)).exists(), \
                match.group(0)

    def test_mentioned_runner_modules_exist(self):
        import importlib
        text = read("DESIGN.md")
        for match in set(re.finditer(r"repro\.experiments\.fig\d", text)):
            importlib.import_module(match.group(0))

    def test_substitutions_enumerated(self):
        text = read("DESIGN.md")
        for tag in ("S1", "S2", "S3", "S4"):
            assert f"**{tag}" in text, tag


class TestExperimentsDocument:
    @pytest.fixture(scope="class")
    def results(self):
        results_dir = ROOT / "results"
        if not (results_dir / "fig4_reduced.csv").exists():
            pytest.skip("committed results not present")
        from repro.experiments.report import load_results_dir
        return load_results_dir(results_dir)

    def test_fig4_table_matches_csv(self, results):
        # The Fig. 4(a) markdown table's first row must match the CSV.
        text = read("EXPERIMENTS.md")
        fig4 = results["fig4"]
        row10 = [r for r in fig4.series("Algorithm 2")
                 if r.param_value == 10.0][0]
        assert f"{row10.mean_volume_gb:.2f}" in text

    def test_claims_all_pass_on_committed_data(self, results):
        from repro.experiments.claims import check_all_claims
        claims = check_all_claims(fig3=results.get("fig3"),
                                  fig4=results.get("fig4"),
                                  fig5=results.get("fig5"))
        failed = [c for c in claims if not c.passed]
        assert not failed, [str(c) for c in failed]

    def test_headline_ratio_documented_accurately(self, results):
        # EXPERIMENTS.md states the C1 ratio (Alg.1 / benchmark at the
        # smallest budget) as 2.62x; recompute it from the data.
        fig3 = results["fig3"]
        a1 = fig3.series("Algorithm 1")[0].mean_volume_gb
        bench = fig3.series("Benchmark")[0].mean_volume_gb
        assert f"{a1 / bench:.2f}" in read("EXPERIMENTS.md")

    def test_svg_panels_exist_for_every_figure(self):
        results_dir = ROOT / "results"
        if not (results_dir / "fig3a_reduced.svg").exists():
            pytest.skip("committed SVGs not present")
        for fig in ("fig3", "fig4", "fig5"):
            for suffix in ("a", "b"):
                assert (results_dir / f"{fig}{suffix}_reduced.svg").exists()


class TestDocsDirectory:
    def test_algorithm_mapping_names_real_modules(self):
        import importlib
        text = read("docs/algorithms.md")
        for match in set(re.finditer(r"`repro/([\w/]+)\.py`", text)):
            mod = "repro." + match.group(1).replace("/", ".")
            importlib.import_module(mod)

    def test_architecture_mentions_all_subpackages(self):
        text = read("docs/architecture.md")
        for pkg in ("geometry", "network", "energy", "radio", "tsp",
                    "orienteering", "core", "sim", "experiments", "utils"):
            assert pkg in text, pkg
