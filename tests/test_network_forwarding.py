"""Unit tests for repro.network.forwarding."""

import numpy as np
import pytest

from repro.network.forwarding import aggregate_volumes, assign_forwarding, build_two_tier_network
from repro.utils.errors import InvalidParameterError


class TestAssignForwarding:
    def test_nearest_policy(self):
        devices = [[0, 0], [10, 0]]
        aggregates = [[1, 0], [9, 0]]
        out = assign_forwarding(devices, aggregates, comm_range=5.0)
        np.testing.assert_array_equal(out, [0, 1])

    def test_out_of_range_unassigned(self):
        out = assign_forwarding([[0, 0]], [[100, 100]], comm_range=5.0)
        assert out[0] == -1

    def test_boundary_in_range(self):
        out = assign_forwarding([[0, 0]], [[3, 4]], comm_range=5.0)
        assert out[0] == 0

    def test_first_policy_picks_lowest_index(self):
        devices = [[5, 0]]
        aggregates = [[6, 0], [4, 0]]  # both in range; "first" -> index 0
        out = assign_forwarding(devices, aggregates, comm_range=5.0,
                                policy="first")
        assert out[0] == 0

    def test_nearest_policy_picks_closest(self):
        devices = [[5, 0]]
        aggregates = [[8, 0], [4.5, 0]]
        out = assign_forwarding(devices, aggregates, comm_range=5.0)
        assert out[0] == 1

    def test_unknown_policy_rejected(self):
        with pytest.raises(InvalidParameterError):
            assign_forwarding([[0, 0]], [[0, 1]], comm_range=1.0, policy="x")

    def test_no_aggregates(self):
        out = assign_forwarding([[0, 0]], np.empty((0, 2)), comm_range=1.0)
        np.testing.assert_array_equal(out, [-1])

    def test_no_devices(self):
        out = assign_forwarding(np.empty((0, 2)), [[0, 0]], comm_range=1.0)
        assert len(out) == 0


class TestAggregateVolumes:
    def test_sums_forwarded(self):
        total = aggregate_volumes(own_volumes=[10.0, 20.0],
                                  device_volumes=[1.0, 2.0, 3.0],
                                  assignment=[0, 0, 1])
        np.testing.assert_allclose(total, [13.0, 23.0])

    def test_unreachable_devices_dropped(self):
        total = aggregate_volumes([10.0], [5.0, 7.0], [-1, 0])
        np.testing.assert_allclose(total, [17.0])

    def test_conservation(self, rng):
        own = rng.uniform(0, 10, 5)
        dev = rng.uniform(0, 10, 20)
        assignment = rng.integers(0, 5, 20)
        total = aggregate_volumes(own, dev, assignment)
        assert total.sum() == pytest.approx(own.sum() + dev.sum())

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            aggregate_volumes([1.0], [1.0, 2.0], [0])

    def test_bad_assignment_index_rejected(self):
        with pytest.raises(InvalidParameterError):
            aggregate_volumes([1.0], [1.0], [5])

    def test_duplicate_assignment_accumulates(self):
        # np.add.at must accumulate repeated indices (not overwrite).
        total = aggregate_volumes([0.0], [1.0, 2.0, 4.0], [0, 0, 0])
        assert total[0] == 7.0


class TestBuildTwoTier:
    def test_network_volumes_include_forwarded(self, rng):
        aggregates = [[0.0, 0.0], [50.0, 0.0]]
        devices = [[1.0, 0.0], [49.0, 0.0], [500.0, 500.0]]
        net, recs = build_two_tier_network(
            aggregate_positions=aggregates, own_volumes=[10.0, 10.0],
            device_positions=devices, device_volumes=[5.0, 6.0, 7.0],
            comm_range=5.0, depot=[0.0, 0.0])
        np.testing.assert_allclose(net.volumes, [15.0, 16.0])
        assert recs[2].assigned_aggregate is None
        assert recs[0].assigned_aggregate == 0

    def test_device_records_complete(self):
        net, recs = build_two_tier_network(
            aggregate_positions=[[0, 0]], own_volumes=[1.0],
            device_positions=[[1, 0]], device_volumes=[2.0],
            comm_range=5.0, depot=[0, 0])
        assert len(recs) == 1
        assert recs[0].data_volume == 2.0
        assert net.devices is recs or net.devices == recs
