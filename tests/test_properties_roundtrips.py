"""Property tests: every serialisation surface round-trips losslessly.

Covers the JSON network schema, the waypoint/plan mission export, and the
sweep-CSV persistence — the three places data crosses a process boundary.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.export import (
    plan_dict_to_tour,
    tour_to_plan_dict,
    tour_to_waypoints,
    waypoints_to_tour,
)
from repro.core.tour import CollectionTour
from repro.energy.model import EnergyModel
from repro.geometry.region import Region
from repro.network.sensor_network import SensorNetwork
from repro.network.serialization import network_from_dict, network_to_dict

coords = st.floats(min_value=0.0, max_value=400.0,
                   allow_nan=False, allow_infinity=False)
volumes_elem = st.floats(min_value=0.0, max_value=1000.0,
                         allow_nan=False, allow_infinity=False)
sojourn_elem = st.floats(min_value=0.0, max_value=60.0,
                         allow_nan=False, allow_infinity=False)

ENERGY = EnergyModel(capacity=1e9, hover_power=150.0,
                     travel_power=100.0, speed=10.0)


@st.composite
def networks(draw, min_n=1, max_n=10):
    n = draw(st.integers(min_n, max_n))
    pts = draw(arrays(np.float64, (n, 2), elements=coords))
    vols = draw(arrays(np.float64, (n,), elements=volumes_elem))
    return SensorNetwork(positions=pts, volumes=vols,
                         depot=[200.0, 200.0],
                         region=Region.square(400.0))


@st.composite
def tours(draw):
    net = draw(networks())
    k = draw(st.integers(1, 6))
    pts = draw(arrays(np.float64, (k, 2), elements=coords))
    pts = np.vstack([net.depot[None, :], pts])
    sojourns = draw(arrays(np.float64, (k + 1,), elements=sojourn_elem))
    collected = np.zeros(net.n_nodes)
    return CollectionTour(points=pts, sojourns=sojourns,
                          collected=collected, network=net,
                          energy=ENERGY, method="synthetic")


class TestNetworkJsonRoundTrip:
    @given(net=networks())
    @settings(max_examples=40, deadline=None)
    def test_lossless(self, net):
        back = network_from_dict(network_to_dict(net))
        np.testing.assert_allclose(back.positions, net.positions)
        np.testing.assert_allclose(back.volumes, net.volumes)
        np.testing.assert_allclose(back.depot, net.depot)
        assert back.region.xmin == net.region.xmin
        assert back.region.ymax == net.region.ymax


class TestMissionExportRoundTrip:
    @given(tour=tours())
    @settings(max_examples=40, deadline=None)
    def test_waypoints_lossless(self, tour):
        wps = tour_to_waypoints(tour)
        back = waypoints_to_tour(wps, tour.network, tour.energy)
        np.testing.assert_allclose(back.points, tour.points)
        np.testing.assert_allclose(back.sojourns, tour.sojourns)

    @given(tour=tours())
    @settings(max_examples=40, deadline=None)
    def test_plan_dict_lossless(self, tour):
        back = plan_dict_to_tour(tour_to_plan_dict(tour), tour.network,
                                 tour.energy)
        np.testing.assert_allclose(back.points, tour.points)
        np.testing.assert_allclose(back.sojourns, tour.sojourns)

    @given(tour=tours())
    @settings(max_examples=40, deadline=None)
    def test_waypoint_etas_consistent(self, tour):
        wps = tour_to_waypoints(tour)
        assert wps[-1].eta_s == pytest.approx(tour.mission_time, rel=1e-9,
                                              abs=1e-9)
        assert wps[-1].energy_j == pytest.approx(tour.total_energy,
                                                 rel=1e-9, abs=1e-9)
        etas = [w.eta_s for w in wps]
        assert all(b >= a - 1e-12 for a, b in zip(etas, etas[1:]))


class TestSweepCsvRoundTrip:
    @given(values=st.lists(
        st.tuples(st.floats(1e3, 1e5, allow_nan=False),
                  st.floats(0, 100, allow_nan=False),
                  st.floats(0, 10, allow_nan=False)),
        min_size=1, max_size=8, unique_by=lambda t: t[0]))
    @settings(max_examples=30, deadline=None)
    def test_lossless(self, values, tmp_path_factory):
        from repro.experiments.config import reduced_settings
        from repro.experiments.report import load_sweep_csv
        from repro.experiments.runner import SweepResult, SweepRow
        from repro.experiments.tables import rows_to_csv
        rows = [SweepRow("capacity", v, "A", vol, 0.0, t, 0.0, 3)
                for v, vol, t in values]
        result = SweepResult(config=reduced_settings(), rows=rows)
        path = tmp_path_factory.mktemp("csv") / "sweep.csv"
        path.write_text(rows_to_csv(result))
        back = load_sweep_csv(path)
        assert len(back.rows) == len(rows)
        for a, b in zip(sorted(rows, key=lambda r: r.param_value),
                        back.series("A")):
            assert b.mean_volume_gb == pytest.approx(a.mean_volume_gb)
            assert b.mean_time_s == pytest.approx(a.mean_time_s)
