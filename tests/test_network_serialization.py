"""Unit tests for repro.network.serialization."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.generator import uniform_network
from repro.network.scenarios import SCENARIOS, make_scenario
from repro.network.serialization import (
    SCHEMA_VERSION,
    network_from_dict,
    network_from_json,
    network_to_dict,
    network_to_json,
    networks_from_json,
    networks_to_json,
)
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def net():
    return uniform_network(12, seed=4)


class TestRoundTrip:
    def test_dict_round_trip(self, net):
        back = network_from_dict(network_to_dict(net))
        np.testing.assert_allclose(back.positions, net.positions)
        np.testing.assert_allclose(back.volumes, net.volumes)
        np.testing.assert_allclose(back.depot, net.depot)
        assert back.name == net.name

    def test_region_preserved(self, net):
        back = network_from_dict(network_to_dict(net))
        assert back.region.xmin == net.region.xmin
        assert back.region.xmax == net.region.xmax

    def test_json_round_trip(self, net):
        back = network_from_json(network_to_json(net))
        np.testing.assert_allclose(back.positions, net.positions)

    def test_json_is_valid_json(self, net):
        payload = json.loads(network_to_json(net, indent=2))
        assert payload["schema"] == SCHEMA_VERSION

    def test_empty_network_round_trip(self):
        from repro.network.sensor_network import SensorNetwork
        net = SensorNetwork(positions=np.empty((0, 2)), volumes=[],
                            depot=[1.0, 2.0])
        back = network_from_dict(network_to_dict(net))
        assert back.n_nodes == 0
        np.testing.assert_array_equal(back.depot, [1.0, 2.0])


class TestExactRoundTrip:
    """The JSON round trip is the parallel executor's worker transport.

    ``run_sweep(..., jobs=N)`` ships instances to workers as JSON and
    relies on the round trip being *bitwise* exact — ``json.dumps`` emits
    the shortest repr that parses back to the same IEEE-754 double — so
    worker tours match in-process tours exactly.  Property-test that
    contract over every generator scenario.
    """

    @settings(max_examples=30, deadline=None)
    @given(name=st.sampled_from(sorted(SCENARIOS)),
           seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_every_scenario_round_trips_bitwise(self, name, seed):
        net = make_scenario(name, seed=seed)
        back = network_from_json(network_to_json(net))
        np.testing.assert_array_equal(back.positions, net.positions)
        np.testing.assert_array_equal(back.volumes, net.volumes)
        np.testing.assert_array_equal(back.depot, net.depot)
        assert back.region == net.region
        assert back.name == net.name

    def test_networks_list_round_trip(self):
        nets = [uniform_network(8, seed=1), uniform_network(5, seed=2)]
        back = networks_from_json(networks_to_json(nets))
        assert len(back) == len(nets)
        for original, restored in zip(nets, back):
            np.testing.assert_array_equal(restored.positions,
                                          original.positions)
            np.testing.assert_array_equal(restored.volumes,
                                          original.volumes)

    def test_networks_empty_list(self):
        assert networks_from_json(networks_to_json([])) == []

    def test_networks_rejects_non_list_payload(self):
        with pytest.raises(InvalidParameterError):
            networks_from_json(json.dumps({"schema": SCHEMA_VERSION}))


class TestErrorHandling:
    def test_wrong_schema_rejected(self, net):
        payload = network_to_dict(net)
        payload["schema"] = 999
        with pytest.raises(InvalidParameterError):
            network_from_dict(payload)

    def test_missing_schema_rejected(self, net):
        payload = network_to_dict(net)
        del payload["schema"]
        with pytest.raises(InvalidParameterError):
            network_from_dict(payload)

    def test_missing_field_rejected(self, net):
        payload = network_to_dict(net)
        del payload["positions"]
        with pytest.raises(InvalidParameterError):
            network_from_dict(payload)

    def test_non_dict_rejected(self):
        with pytest.raises(InvalidParameterError):
            network_from_dict([1, 2, 3])

    def test_invalid_json_rejected(self):
        with pytest.raises(InvalidParameterError):
            network_from_json("{not json")

    def test_negative_volume_rejected_on_load(self, net):
        payload = network_to_dict(net)
        payload["volumes"][0] = -5.0
        with pytest.raises(InvalidParameterError):
            network_from_dict(payload)
