"""Unit tests for repro.radio.link."""

import numpy as np
import pytest

from repro.radio.link import PAPER_RADIO_MODEL, DistanceRateModel, RadioModel
from repro.utils.errors import InvalidParameterError


class TestRadioModel:
    def test_paper_preset(self):
        assert PAPER_RADIO_MODEL.bandwidth == 150.0
        assert PAPER_RADIO_MODEL.coverage_radius == 50.0

    def test_coverage_radius_law(self):
        m = RadioModel(bandwidth=10.0, transmission_range=5.0, altitude=3.0)
        assert m.coverage_radius == pytest.approx(4.0)

    def test_altitude_above_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            RadioModel(bandwidth=10.0, transmission_range=5.0, altitude=6.0)

    def test_upload_time(self):
        m = RadioModel(bandwidth=150.0, transmission_range=50.0, altitude=0.0)
        assert m.upload_time(300.0) == 2.0

    def test_upload_time_zero_volume(self):
        assert PAPER_RADIO_MODEL.upload_time(0.0) == 0.0

    def test_upload_times_vectorised(self):
        t = PAPER_RADIO_MODEL.upload_times([150.0, 300.0, 0.0])
        np.testing.assert_allclose(t, [1.0, 2.0, 0.0])

    def test_upload_times_rejects_negative(self):
        with pytest.raises(InvalidParameterError):
            PAPER_RADIO_MODEL.upload_times([-1.0])

    def test_uploadable_volume_inverse(self):
        m = PAPER_RADIO_MODEL
        assert m.uploadable_volume(m.upload_time(450.0)) == pytest.approx(450.0)

    def test_rejects_non_positive_bandwidth(self):
        with pytest.raises(InvalidParameterError):
            RadioModel(bandwidth=0.0, transmission_range=5.0, altitude=0.0)


class TestDistanceRateModel:
    @pytest.fixture
    def base(self):
        return RadioModel(bandwidth=100.0, transmission_range=50.0,
                          altitude=30.0)

    def test_zero_exponent_recovers_constant_model(self, base):
        m = DistanceRateModel(base=base, exponent=0.0)
        g = np.linspace(0, base.coverage_radius, 10)
        np.testing.assert_allclose(m.rate_at(g), base.bandwidth)

    def test_default_saturation_is_constant_within_coverage(self, base):
        # d_sat defaults to R; every in-coverage slant is <= R, so the
        # paper's constant model is reproduced even with a big exponent.
        m = DistanceRateModel(base=base, exponent=3.0)
        g = np.linspace(0, base.coverage_radius, 10)
        np.testing.assert_allclose(m.rate_at(g), base.bandwidth)

    def test_rate_decays_beyond_saturation(self, base):
        m = DistanceRateModel(base=base, exponent=2.0,
                              saturation_distance=35.0)
        rates = m.rate_at([0.0, 20.0, 39.0])
        assert rates[0] >= rates[1] >= rates[2]
        assert rates[2] < base.bandwidth  # slant > 35 m here

    def test_saturated_zone_keeps_full_rate(self, base):
        # H = 30; a sensor 10 m out has slant ~31.6 < d_sat = 40.
        m = DistanceRateModel(base=base, exponent=2.0,
                              saturation_distance=40.0)
        assert m.rate_at([10.0])[0] == base.bandwidth

    def test_rate_never_exceeds_bandwidth(self, base):
        m = DistanceRateModel(base=base, exponent=2.0,
                              saturation_distance=30.0)
        assert (m.rate_at(np.linspace(0, 40, 50)) <= base.bandwidth + 1e-12).all()

    def test_out_of_coverage_zero(self, base):
        m = DistanceRateModel(base=base, exponent=1.0)
        assert m.rate_at([base.coverage_radius + 1.0])[0] == 0.0

    def test_upload_time_inf_out_of_range(self, base):
        m = DistanceRateModel(base=base, exponent=1.0)
        assert m.upload_time(10.0, base.coverage_radius + 5.0) == np.inf

    def test_upload_time_zero_volume_out_of_range(self, base):
        m = DistanceRateModel(base=base, exponent=1.0)
        assert m.upload_time(0.0, base.coverage_radius + 5.0) == 0.0

    def test_negative_exponent_rejected(self, base):
        with pytest.raises(InvalidParameterError):
            DistanceRateModel(base=base, exponent=-1.0)

    def test_saturation_beyond_range_rejected(self, base):
        with pytest.raises(InvalidParameterError):
            DistanceRateModel(base=base, saturation_distance=100.0)

    def test_non_positive_saturation_rejected(self, base):
        with pytest.raises(InvalidParameterError):
            DistanceRateModel(base=base, saturation_distance=0.0)

    def test_negative_distance_rejected(self, base):
        m = DistanceRateModel(base=base, exponent=1.0)
        with pytest.raises(InvalidParameterError):
            m.rate_at([-1.0])

    def test_higher_altitude_lower_rates(self):
        # Same ground distance, same d_sat: climbing raises the slant and
        # therefore lowers the rate — the mechanism behind the paper's
        # low-altitude claim.
        lo = DistanceRateModel(
            base=RadioModel(bandwidth=100.0, transmission_range=60.0,
                            altitude=5.0),
            exponent=2.0, saturation_distance=30.0)
        hi = DistanceRateModel(
            base=RadioModel(bandwidth=100.0, transmission_range=60.0,
                            altitude=45.0),
            exponent=2.0, saturation_distance=30.0)
        g = 25.0
        assert hi.rate_at([g])[0] < lo.rate_at([g])[0]
