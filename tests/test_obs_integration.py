"""Integration: tracing is invisible to planner outputs and covers the stack.

Two guarantees the observability layer ships with:

* **identity** — a traced ``plan_tour`` returns a bitwise-identical tour
  to an untraced one, for every registered planner (tracing only reads
  clocks, never touches planner state);
* **coverage** — one traced plan + simulated mission produces spans from
  every instrumented layer (planner facade, greedy policy, kernel,
  orienteering/TSP subroutines, simulator), properly rooted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.planner import PLANNERS, plan_tour
from repro.obs.tracer import Tracer, activated, get_tracer
from repro.sim.simulator import simulate_mission


def tours_identical(a, b) -> bool:
    return (np.array_equal(a.points, b.points)
            and np.array_equal(a.sojourns, b.sojourns)
            and np.array_equal(a.collected, b.collected))


@pytest.mark.parametrize("method", sorted(PLANNERS))
def test_traced_plan_bitwise_identical(method, small_net, energy, radio):
    kwargs = {"seed": 5} if method == "algorithm1" else {}
    plain = plan_tour(small_net, energy, radio, method=method,
                      delta=40.0, **kwargs)
    tracer = Tracer()
    traced = plan_tour(small_net, energy, radio, method=method,
                       delta=40.0, trace=tracer, **kwargs)
    assert tours_identical(plain, traced)
    assert len(tracer.records()) > 0
    # meta (minus timing-carrying perf seconds) matches too.
    for meta in (plain.meta, traced.meta):
        meta.get("perf", {}).pop("seconds", None)
    assert plain.meta == traced.meta


@pytest.mark.parametrize("method", sorted(PLANNERS))
def test_trace_param_leaves_global_tracer_untouched(method, small_net,
                                                    energy, radio):
    before = get_tracer()
    kwargs = {"seed": 1} if method == "algorithm1" else {}
    plan_tour(small_net, energy, radio, method=method, delta=40.0,
              trace=Tracer(), **kwargs)
    assert get_tracer() is before


def test_root_span_wraps_everything(small_net, energy, radio):
    tracer = Tracer()
    plan_tour(small_net, energy, radio, method="algorithm2", delta=40.0,
              trace=tracer)
    records = tracer.records()
    roots = [r for r in records if r["parent"] is None]
    assert [r["name"] for r in roots] == ["planner.plan_tour"]
    assert roots[0]["attrs"] == {"method": "algorithm2",
                                 "n_nodes": small_net.n_nodes}
    # Every other span ultimately parents to the root.
    by_id = {r["id"]: r for r in records}
    for rec in records:
        cur = rec
        while cur["parent"] is not None:
            cur = by_id[cur["parent"]]
        assert cur is roots[0]


def test_span_coverage_of_planner_kernel_layers(small_net, energy, radio):
    tracer = Tracer()
    tour = plan_tour(small_net, energy, radio, method="algorithm2",
                     delta=40.0, trace=tracer)
    with activated(tracer):
        simulate_mission(tour, radio)
    names = {r["name"] for r in tracer.records()}
    for expected in ("planner.plan_tour", "alg2.round", "kernel.rescore",
                     "kernel.insertion", "sim.mission", "sim.hover",
                     "sim.leg"):
        assert expected in names, expected


def test_span_coverage_algorithm1_orienteering(small_net, energy, radio):
    tracer = Tracer()
    plan_tour(small_net, energy, radio, method="algorithm1", delta=40.0,
              seed=5, trace=tracer)
    names = {r["name"] for r in tracer.records()}
    assert {"alg1.reduction", "orienteering.solve"} <= names


def test_span_coverage_algorithm3(small_net, energy, radio):
    tracer = Tracer()
    plan_tour(small_net, energy, radio, method="algorithm3", delta=40.0,
              K=2, trace=tracer)
    names = {r["name"] for r in tracer.records()}
    assert {"alg3.greedy", "alg3.round", "kernel.partial"} <= names


def test_span_coverage_benchmark_christofides(small_net, energy, radio):
    tracer = Tracer()
    plan_tour(small_net, energy, radio, method="benchmark", trace=tracer)
    names = {r["name"] for r in tracer.records()}
    assert {"benchmark.prune", "tsp.christofides"} <= names


def test_run_sweep_trace_records_cells(tiny_net, radio):
    from repro.energy.model import EnergyModel
    from repro.experiments.config import reduced_settings
    from repro.experiments.runner import AlgoSpec, run_sweep

    config = reduced_settings()
    tracer = Tracer()
    result = run_sweep(
        config, [tiny_net], [AlgoSpec(name="Alg2", method="algorithm2")],
        "capacity", [2e4, 4e4],
        make_energy=lambda cfg, v: EnergyModel(
            capacity=v, hover_power=150.0, travel_power=100.0, speed=10.0),
        make_kwargs=lambda cfg, v, spec: {"delta": 40.0},
        validate=False, trace=tracer)
    assert len(result.rows) == 2
    cells = [r for r in tracer.records() if r["name"] == "runner.cell"]
    assert len(cells) == 2
    assert {c["attrs"]["value"] for c in cells} == {2e4, 4e4}
    # Planner roots nest under their cell span.
    cell_ids = {c["id"] for c in cells}
    plans = [r for r in tracer.records()
             if r["name"] == "planner.plan_tour"]
    assert plans and all(p["parent"] in cell_ids for p in plans)
