"""The acceptance criterion as a test: the repo's own tree is repro-lint
clean (with an empty baseline), and the shipped baseline really is empty."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import BASELINE_NAME, check_paths

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_src_tree_is_clean():
    findings = check_paths(REPO_ROOT, [REPO_ROOT / "src"])
    assert findings == [], "\n".join(f.location + " " + f.message
                                     for f in findings)


def test_tests_tree_is_clean():
    findings = check_paths(REPO_ROOT, [REPO_ROOT / "tests"])
    assert findings == [], "\n".join(f.location + " " + f.message
                                     for f in findings)


def test_shipped_baseline_is_empty():
    baseline = json.loads((REPO_ROOT / BASELINE_NAME).read_text())
    assert baseline["version"] == 1
    assert baseline["findings"] == []
