"""Unit tests for repro.core.export (waypoint / plan / CSV export)."""

import json

import numpy as np
import pytest

from repro.core.algorithm2 import plan_algorithm2
from repro.core.export import (
    PLAN_SCHEMA,
    plan_dict_to_tour,
    tour_to_csv,
    tour_to_plan_dict,
    tour_to_plan_json,
    tour_to_waypoints,
    waypoints_to_tour,
)
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def tour(small_net, radio, energy):
    return plan_algorithm2(small_net, energy, radio, delta=25.0)


class TestWaypoints:
    def test_count_includes_return(self, tour):
        wps = tour_to_waypoints(tour)
        assert len(wps) == len(tour.points) + 1

    def test_return_waypoint_closes_at_depot(self, tour):
        wps = tour_to_waypoints(tour)
        assert (wps[-1].x, wps[-1].y) == (wps[0].x, wps[0].y)
        assert wps[-1].hold_s == 0.0

    def test_final_eta_is_mission_time(self, tour):
        wps = tour_to_waypoints(tour)
        assert wps[-1].eta_s == pytest.approx(tour.mission_time)

    def test_final_energy_is_total(self, tour):
        wps = tour_to_waypoints(tour)
        assert wps[-1].energy_j == pytest.approx(tour.total_energy)

    def test_etas_monotone(self, tour):
        wps = tour_to_waypoints(tour)
        etas = [w.eta_s for w in wps]
        assert all(b >= a for a, b in zip(etas, etas[1:]))

    def test_holds_match_sojourns(self, tour):
        wps = tour_to_waypoints(tour)
        np.testing.assert_allclose([w.hold_s for w in wps[:-1]],
                                   tour.sojourns)

    def test_altitude_applied(self, tour):
        wps = tour_to_waypoints(tour, altitude=30.0)
        assert all(w.altitude == 30.0 for w in wps)


class TestRoundTrip:
    def test_waypoints_round_trip(self, tour, small_net, energy):
        wps = tour_to_waypoints(tour)
        back = waypoints_to_tour(wps, small_net, energy,
                                 collected=tour.collected)
        np.testing.assert_allclose(back.points, tour.points)
        np.testing.assert_allclose(back.sojourns, tour.sojourns)
        assert back.total_energy == pytest.approx(tour.total_energy)

    def test_plan_dict_round_trip(self, tour, small_net, energy):
        plan = tour_to_plan_dict(tour, altitude=25.0)
        back = plan_dict_to_tour(plan, small_net, energy)
        np.testing.assert_allclose(back.points, tour.points)
        np.testing.assert_allclose(back.sojourns, tour.sojourns)

    def test_empty_waypoints_rejected(self, small_net, energy):
        with pytest.raises(InvalidParameterError):
            waypoints_to_tour([], small_net, energy)


class TestPlanDocument:
    def test_schema_and_structure(self, tour):
        plan = tour_to_plan_dict(tour)
        assert plan["schema"] == PLAN_SCHEMA
        assert plan["mission"]["cruiseSpeed"] == tour.energy.speed
        assert len(plan["mission"]["items"]) == len(tour.points) + 1

    def test_loiter_commands_only_at_hovers(self, tour):
        plan = tour_to_plan_dict(tour)
        for item, hold in zip(plan["mission"]["items"],
                              list(tour.sojourns) + [0.0]):
            expected = 19 if hold > 0 else 16
            assert item["command"] == expected

    def test_json_serialises(self, tour):
        doc = json.loads(tour_to_plan_json(tour))
        assert doc["schema"] == PLAN_SCHEMA

    def test_meta_carries_claims(self, tour):
        plan = tour_to_plan_dict(tour)
        assert plan["meta"]["collected_mb"] == pytest.approx(
            tour.collected_volume)

    def test_bad_schema_rejected(self, tour, small_net, energy):
        plan = tour_to_plan_dict(tour)
        plan["schema"] = "other/1"
        with pytest.raises(InvalidParameterError):
            plan_dict_to_tour(plan, small_net, energy)

    def test_malformed_items_rejected(self, tour, small_net, energy):
        plan = tour_to_plan_dict(tour)
        plan["mission"]["items"][0] = {"type": "SimpleItem"}
        with pytest.raises(InvalidParameterError):
            plan_dict_to_tour(plan, small_net, energy)


class TestCsv:
    def test_header_and_rows(self, tour):
        text = tour_to_csv(tour)
        lines = text.strip().splitlines()
        assert lines[0] == "index,x_m,y_m,alt_m,hold_s,eta_s,energy_j"
        assert len(lines) == len(tour.points) + 2  # header + points + return

    def test_csv_parses_numerically(self, tour):
        import csv as csv_mod
        import io
        rows = list(csv_mod.DictReader(io.StringIO(tour_to_csv(tour))))
        assert float(rows[-1]["eta_s"]) == pytest.approx(tour.mission_time,
                                                         abs=1e-3)
