"""Unit tests for repro.geometry.coverage."""

import numpy as np
import pytest

from repro.geometry.coverage import (
    CoverageIndex,
    coverage_matrix,
    coverage_sets_bruteforce,
    projected_radius,
)
from repro.utils.errors import InvalidParameterError


class TestProjectedRadius:
    def test_ground_level(self):
        assert projected_radius(50.0, 0.0) == 50.0

    def test_pythagorean(self):
        assert projected_radius(5.0, 3.0) == pytest.approx(4.0)

    def test_altitude_equals_range(self):
        assert projected_radius(10.0, 10.0) == 0.0

    def test_altitude_above_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            projected_radius(10.0, 10.1)

    def test_negative_altitude_rejected(self):
        with pytest.raises(InvalidParameterError):
            projected_radius(10.0, -1.0)

    def test_non_positive_range_rejected(self):
        with pytest.raises(InvalidParameterError):
            projected_radius(0.0, 0.0)


class TestBruteforceReference:
    def test_simple_coverage(self):
        sets = coverage_sets_bruteforce([[0, 0]], [[1, 0], [10, 0]], radius=2.0)
        np.testing.assert_array_equal(sets[0], [0])

    def test_boundary_is_covered(self):
        # The paper uses <= throughout: distance exactly R0 counts.
        sets = coverage_sets_bruteforce([[0, 0]], [[3, 4]], radius=5.0)
        np.testing.assert_array_equal(sets[0], [0])

    def test_just_outside_not_covered(self):
        sets = coverage_sets_bruteforce([[0, 0]], [[3, 4.001]], radius=5.0)
        assert len(sets[0]) == 0

    def test_no_sensors(self):
        sets = coverage_sets_bruteforce([[0, 0]], np.empty((0, 2)), radius=5.0)
        assert len(sets) == 1 and len(sets[0]) == 0


class TestCoverageMatrix:
    def test_shape(self, rng):
        cands = rng.uniform(0, 100, (6, 2))
        sensors = rng.uniform(0, 100, (9, 2))
        assert coverage_matrix(cands, sensors, 20.0).shape == (6, 9)

    def test_matches_bruteforce(self, rng):
        cands = rng.uniform(0, 100, (15, 2))
        sensors = rng.uniform(0, 100, (25, 2))
        mat = coverage_matrix(cands, sensors, 18.0)
        ref = coverage_sets_bruteforce(cands, sensors, 18.0)
        for i in range(15):
            np.testing.assert_array_equal(np.flatnonzero(mat[i]), ref[i])

    def test_empty_sensors(self):
        mat = coverage_matrix([[0, 0]], np.empty((0, 2)), 5.0)
        assert mat.shape == (1, 0)

    def test_empty_candidates(self):
        mat = coverage_matrix(np.empty((0, 2)), [[0, 0]], 5.0)
        assert mat.shape == (0, 1)


class TestCoverageIndex:
    def test_covered_by_matches_bruteforce(self, rng):
        sensors = rng.uniform(0, 100, (30, 2))
        cands = rng.uniform(0, 100, (12, 2))
        idx = CoverageIndex(sensors, 22.0)
        ref = coverage_sets_bruteforce(cands, sensors, 22.0)
        got = idx.covered_by(cands)
        for g, r in zip(got, ref):
            np.testing.assert_array_equal(g, r)

    def test_covered_by_single(self, rng):
        sensors = rng.uniform(0, 100, (20, 2))
        idx = CoverageIndex(sensors, 25.0)
        point = [50.0, 50.0]
        single = idx.covered_by_single(point)
        bulk = idx.covered_by([point])[0]
        np.testing.assert_array_equal(single, bulk)

    def test_covering_candidates_mask(self, rng):
        sensors = np.array([[10.0, 10.0]])
        idx = CoverageIndex(sensors, 5.0)
        mask = idx.covering_candidates([[10, 12], [50, 50]])
        np.testing.assert_array_equal(mask, [True, False])

    def test_len(self, rng):
        assert len(CoverageIndex(rng.uniform(0, 10, (7, 2)), 1.0)) == 7

    def test_empty_index(self):
        idx = CoverageIndex(np.empty((0, 2)), 5.0)
        assert len(idx) == 0
        assert len(idx.covered_by_single([0, 0])) == 0
        assert not idx.covering_candidates([[0, 0]])[0]

    def test_sensors_view_readonly(self, rng):
        idx = CoverageIndex(rng.uniform(0, 10, (5, 2)), 1.0)
        with pytest.raises(ValueError):
            idx.sensors[0, 0] = 99.0

    def test_matrix_agrees_with_module_function(self, rng):
        sensors = rng.uniform(0, 100, (10, 2))
        cands = rng.uniform(0, 100, (4, 2))
        idx = CoverageIndex(sensors, 30.0)
        np.testing.assert_array_equal(idx.matrix(cands),
                                      coverage_matrix(cands, sensors, 30.0))
