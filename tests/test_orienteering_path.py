"""Tests for path orienteering and the dummy-depot equivalence (paper Alg. 1)."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.orienteering.exact import solve_exact
from repro.orienteering.path import (
    augment_with_dummy_depot,
    path_to_tour,
    solve_path_exact,
    tour_to_path,
)
from repro.orienteering.problem import OrienteeringInstance
from repro.utils.errors import InvalidParameterError


def make_instance(rng, n=7, budget=None, groups=None):
    pts = rng.uniform(0, 100, (n, 2))
    costs = pairwise_distances(pts)
    awards = rng.uniform(1, 10, n)
    awards[0] = 0.0
    if budget is None:
        budget = rng.uniform(120, 320)
    return OrienteeringInstance(costs=costs, awards=awards, budget=budget,
                                depot=0, conflict_groups=groups)


class TestAugmentation:
    def test_dummy_mirrors_depot_edges(self, rng):
        inst = make_instance(rng)
        aug, dummy = augment_with_dummy_depot(inst)
        assert dummy == inst.n_nodes
        np.testing.assert_allclose(aug.costs[dummy, :dummy],
                                   inst.costs[0, :])
        assert aug.costs[0, dummy] == 0.0
        assert aug.awards[dummy] == 0.0

    def test_augmented_is_valid_instance(self, rng):
        inst = make_instance(rng)
        aug, _ = augment_with_dummy_depot(inst)
        assert aug.n_nodes == inst.n_nodes + 1
        assert aug.budget == inst.budget

    def test_conflicts_carry_over(self, rng):
        inst = make_instance(rng, groups=[np.array([1, 2])])
        aug, dummy = augment_with_dummy_depot(inst)
        assert aug.node_conflicts_with(2, [0, 1])
        assert not aug.node_conflicts_with(dummy, [0, 1, 2])


class TestPathSolver:
    def test_path_endpoints(self, rng):
        inst = make_instance(rng)
        path, award = solve_path_exact(inst, 0, 3)
        assert path[0] == 0 and path[-1] == 3

    def test_path_within_budget(self, rng):
        inst = make_instance(rng)
        path, _ = solve_path_exact(inst, 0, 3)
        cost = sum(inst.costs[a, b] for a, b in zip(path, path[1:]))
        assert cost <= inst.budget + 1e-9

    def test_award_matches_path(self, rng):
        inst = make_instance(rng)
        path, award = solve_path_exact(inst, 0, 3)
        assert award == pytest.approx(float(inst.awards[path].sum()))

    def test_same_endpoints_rejected(self, rng):
        inst = make_instance(rng)
        with pytest.raises(InvalidParameterError):
            solve_path_exact(inst, 2, 2)

    def test_infeasible_endpoints_raise(self, rng):
        inst = make_instance(rng, budget=1e-9)
        with pytest.raises(InvalidParameterError):
            solve_path_exact(inst, 0, 3)

    def test_direct_hop_when_budget_tight(self, rng):
        inst = make_instance(rng)
        tight = OrienteeringInstance(costs=inst.costs, awards=inst.awards,
                                     budget=float(inst.costs[0, 3]) + 1e-6,
                                     depot=0)
        path, _ = solve_path_exact(tight, 0, 3)
        np.testing.assert_array_equal(path, [0, 3])


class TestEquivalence:
    """The paper's reduction: d -> d' paths == closed tours through d."""

    @pytest.mark.parametrize("seed", range(6))
    def test_path_award_equals_tour_award(self, seed):
        rng = np.random.default_rng(seed)
        inst = make_instance(rng, n=7)
        aug, dummy = augment_with_dummy_depot(inst)
        path, path_award = solve_path_exact(aug, inst.depot, dummy)
        tour_sol = solve_exact(inst)
        assert path_award == pytest.approx(tour_sol.award)

    @pytest.mark.parametrize("seed", range(3))
    def test_path_collapses_to_feasible_tour(self, seed):
        rng = np.random.default_rng(50 + seed)
        inst = make_instance(rng, n=7)
        aug, dummy = augment_with_dummy_depot(inst)
        path, _ = solve_path_exact(aug, inst.depot, dummy)
        tour = path_to_tour(path, dummy)
        assert inst.is_feasible(tour)

    def test_round_trip_path_tour(self, rng):
        inst = make_instance(rng)
        aug, dummy = augment_with_dummy_depot(inst)
        tour = np.array([0, 2, 4])
        path = tour_to_path(tour, dummy)
        np.testing.assert_array_equal(path_to_tour(path, dummy), tour)

    def test_path_cost_equals_tour_cost(self, rng):
        # A d -> d' path in the augmented graph costs exactly the closed
        # tour's cost (the dummy mirrors the depot's edges).
        inst = make_instance(rng)
        aug, dummy = augment_with_dummy_depot(inst)
        tour = np.array([0, 2, 4])
        path = tour_to_path(tour, dummy)
        path_cost = sum(aug.costs[a, b] for a, b in zip(path, path[1:]))
        assert path_cost == pytest.approx(inst.tour_cost(tour))

    def test_equivalence_with_conflicts(self, rng):
        inst = make_instance(rng, n=6, budget=1e6,
                             groups=[np.array([1, 2])])
        aug, dummy = augment_with_dummy_depot(inst)
        path, path_award = solve_path_exact(aug, 0, dummy)
        tour_sol = solve_exact(inst)
        assert path_award == pytest.approx(tour_sol.award)
        assert len(set(path_to_tour(path, dummy)) & {1, 2}) <= 1
