"""Unit tests for repro.experiments.svg_plot."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.config import reduced_settings
from repro.experiments.runner import SweepResult, SweepRow
from repro.experiments.svg_plot import PALETTE, render_series_svg, render_sweep_svg
from repro.utils.errors import InvalidParameterError

SVG_NS = "{http://www.w3.org/2000/svg}"


def make_result():
    cfg = reduced_settings()
    rows = []
    for i, v in enumerate((1e4, 2e4, 3e4)):
        rows.append(SweepRow("capacity", v, "Algorithm 2",
                             mean_volume_gb=10.0 + i, std_volume_gb=0.1,
                             mean_time_s=0.5 * (i + 1), std_time_s=0.01,
                             n_instances=3))
        rows.append(SweepRow("capacity", v, "Benchmark",
                             mean_volume_gb=5.0 + i, std_volume_gb=0.1,
                             mean_time_s=0.2, std_time_s=0.01,
                             n_instances=3))
    return SweepResult(config=cfg, rows=rows)


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestRenderSeriesSvg:
    def test_is_valid_xml(self):
        svg = render_series_svg([1, 2, 3], {"A": [1, 2, 3]})
        root = parse(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        svg = render_series_svg([1, 2], {"A": [1, 2], "B": [2, 1]})
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        assert polylines[0].get("stroke") == PALETTE[0]
        assert polylines[1].get("stroke") == PALETTE[1]

    def test_markers_have_tooltips(self):
        svg = render_series_svg([1, 2], {"A": [1.0, 2.0]})
        root = parse(svg)
        circles = root.findall(f"{SVG_NS}circle")
        data_circles = [c for c in circles
                        if c.find(f"{SVG_NS}title") is not None]
        assert len(data_circles) == 2
        assert "A:" in data_circles[0].find(f"{SVG_NS}title").text

    def test_direct_labels_present(self):
        svg = render_series_svg([1, 2], {"Algorithm 2": [1, 2],
                                         "Benchmark": [2, 1]})
        assert "Algorithm 2" in svg and "Benchmark" in svg

    def test_legend_only_for_multiple_series(self):
        single = render_series_svg([1, 2], {"A": [1, 2]})
        multi = render_series_svg([1, 2], {"A": [1, 2], "B": [2, 1]})
        # The legend adds one extra text per series beyond the direct label.
        assert multi.count(">B<") == 2  # direct label + legend entry
        assert single.count(">A<") == 1  # direct label only

    def test_fixed_slot_assignment(self):
        # Removing the first series must not repaint the second.
        both = render_series_svg([1, 2], {"A": [1, 2], "B": [2, 1]})
        root = parse(both)
        b_line = root.findall(f"{SVG_NS}polyline")[1]
        assert b_line.get("stroke") == PALETTE[1]

    def test_too_many_series_rejected(self):
        series = {f"S{i}": [1, 2] for i in range(9)}
        with pytest.raises(InvalidParameterError):
            render_series_svg([1, 2], series)

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_series_svg([1, 2], {"A": [1.0]})

    def test_escapes_markup_in_names(self):
        svg = render_series_svg([1, 2], {"<evil> & co": [1, 2]})
        parse(svg)  # must stay well-formed
        assert "<evil>" not in svg

    def test_constant_series_renders(self):
        svg = render_series_svg([1, 2, 3], {"A": [5.0, 5.0, 5.0]})
        parse(svg)

    def test_title_and_axis_labels(self):
        svg = render_series_svg([1, 2], {"A": [1, 2]}, title="T",
                                ylabel="Y", xlabel="X")
        assert ">T<" in svg and ">Y<" in svg and ">X<" in svg


class TestRenderSweepSvg:
    def test_volume_panel(self):
        svg = render_sweep_svg(make_result(), panel="volume")
        parse(svg)
        assert "collected data volume (GB)" in svg
        assert "Algorithm 2" in svg

    def test_time_panel(self):
        svg = render_sweep_svg(make_result(), panel="time")
        assert "planning time (s)" in svg

    def test_unknown_panel_rejected(self):
        with pytest.raises(InvalidParameterError):
            render_sweep_svg(make_result(), panel="chroma")

    def test_empty_result_rejected(self):
        empty = SweepResult(config=reduced_settings(), rows=[])
        with pytest.raises(InvalidParameterError):
            render_sweep_svg(empty)

    def test_custom_title(self):
        svg = render_sweep_svg(make_result(), title="Fig. 5(a)")
        assert "Fig. 5(a)" in svg
