"""Unit tests for repro.energy.ledger."""

import pytest

from repro.energy.ledger import EnergyLedger
from repro.energy.model import EnergyModel
from repro.utils.errors import InfeasibleTourError, InvalidParameterError


@pytest.fixture
def model():
    return EnergyModel(capacity=1000.0, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


class TestDebits:
    def test_travel_debit(self, model):
        ledger = EnergyLedger(model)
        entry = ledger.debit_travel(30.0)
        assert entry.activity == "travel"
        assert entry.duration == 3.0
        assert entry.energy == 300.0
        assert ledger.spent == 300.0

    def test_hover_debit(self, model):
        ledger = EnergyLedger(model)
        entry = ledger.debit_hover(2.0, note="site 3")
        assert entry.activity == "hover"
        assert entry.energy == 300.0
        assert entry.note == "site 3"

    def test_accumulation(self, model):
        ledger = EnergyLedger(model)
        ledger.debit_travel(30.0)
        ledger.debit_hover(2.0)
        assert ledger.spent == 600.0
        assert ledger.remaining == 400.0

    def test_time_totals(self, model):
        ledger = EnergyLedger(model)
        ledger.debit_travel(30.0)  # 3 s, 300 J
        ledger.debit_travel(20.0)  # 2 s, 200 J
        ledger.debit_hover(3.0)    # 450 J; total 950 J < 1000 J
        assert ledger.travel_time == pytest.approx(5.0)
        assert ledger.hover_time == pytest.approx(3.0)

    def test_zero_debits_allowed(self, model):
        ledger = EnergyLedger(model)
        ledger.debit_travel(0.0)
        ledger.debit_hover(0.0)
        assert ledger.spent == 0.0

    def test_negative_rejected(self, model):
        ledger = EnergyLedger(model)
        with pytest.raises(InvalidParameterError):
            ledger.debit_travel(-1.0)

    def test_entries_are_copies(self, model):
        ledger = EnergyLedger(model)
        ledger.debit_hover(1.0)
        entries = ledger.entries
        entries.clear()
        assert len(ledger.entries) == 1


class TestOverdraw:
    def test_strict_raises_at_overdraw(self, model):
        ledger = EnergyLedger(model)
        ledger.debit_travel(90.0)  # 900 J
        with pytest.raises(InfeasibleTourError) as exc_info:
            ledger.debit_hover(1.0)  # +150 J > 1000 J
        assert exc_info.value.available == 1000.0
        # The failed debit must not be recorded.
        assert ledger.spent == 900.0
        assert len(ledger.entries) == 1

    def test_exact_capacity_allowed(self, model):
        ledger = EnergyLedger(model)
        ledger.debit_travel(100.0)  # exactly 1000 J
        assert ledger.remaining == pytest.approx(0.0)
        assert not ledger.overdrawn

    def test_non_strict_records_overdraw(self, model):
        ledger = EnergyLedger(model, strict=False)
        ledger.debit_travel(90.0)
        ledger.debit_hover(10.0)  # 900 + 1500 J
        assert ledger.overdrawn
        assert ledger.remaining < 0

    def test_requires_energy_model(self):
        with pytest.raises(InvalidParameterError):
            EnergyLedger("not a model")
