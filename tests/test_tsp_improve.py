"""Unit tests for repro.tsp.improve."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.tsp.construct import nearest_neighbor_tour
from repro.tsp.exact import held_karp
from repro.tsp.improve import or_opt, two_opt
from repro.tsp.length import tour_length_matrix


@pytest.fixture
def instance(rng):
    pts = rng.uniform(0, 100, (12, 2))
    dist = pairwise_distances(pts)
    return dist, nearest_neighbor_tour(dist)


class TestTwoOpt:
    def test_never_lengthens(self, instance):
        dist, tour = instance
        improved = two_opt(tour, dist)
        assert (tour_length_matrix(improved, dist)
                <= tour_length_matrix(tour, dist) + 1e-9)

    def test_preserves_node_set(self, instance):
        dist, tour = instance
        improved = two_opt(tour, dist)
        assert sorted(improved) == sorted(tour)

    def test_input_not_mutated(self, instance):
        dist, tour = instance
        copy = tour.copy()
        two_opt(tour, dist)
        np.testing.assert_array_equal(tour, copy)

    def test_fixes_obvious_crossing(self):
        # Square visited in crossing order 0-2-1-3; 2-opt must uncross it.
        pts = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        dist = pairwise_distances(pts)
        crossed = np.array([0, 2, 1, 3])
        improved = two_opt(crossed, dist)
        assert tour_length_matrix(improved, dist) == pytest.approx(4.0)

    def test_short_tours_untouched(self, instance):
        dist, _ = instance
        np.testing.assert_array_equal(two_opt([0, 1, 2], dist), [0, 1, 2])

    @pytest.mark.parametrize("seed", range(5))
    def test_reaches_near_optimal_small(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, (9, 2))
        dist = pairwise_distances(pts)
        _, opt = held_karp(dist)
        start = nearest_neighbor_tour(dist)
        improved = two_opt(start, dist)
        # 2-opt from NN is reliably within 10 % at this size.
        assert tour_length_matrix(improved, dist) <= 1.10 * opt + 1e-9


class TestOrOpt:
    def test_never_lengthens(self, instance):
        dist, tour = instance
        improved = or_opt(tour, dist)
        assert (tour_length_matrix(improved, dist)
                <= tour_length_matrix(tour, dist) + 1e-9)

    def test_preserves_node_set(self, instance):
        dist, tour = instance
        assert sorted(or_opt(tour, dist)) == sorted(tour)

    def test_short_tours_untouched(self, instance):
        dist, _ = instance
        np.testing.assert_array_equal(or_opt([0, 1, 2, 3], dist), [0, 1, 2, 3])

    def test_relocates_stranded_vertex(self):
        # A vertex visited far out of sequence; or-opt should relocate it.
        pts = np.array([[0, 0], [10, 0], [20, 0], [20, 10],
                        [0, 10], [10, 10]], dtype=float)
        dist = pairwise_distances(pts)
        # 5 belongs between 4 and 3 on the top edge; place it badly.
        bad = np.array([0, 5, 1, 2, 3, 4])
        improved = or_opt(bad, dist)
        assert (tour_length_matrix(improved, dist)
                < tour_length_matrix(bad, dist) - 1e-9)

    def test_combined_with_two_opt(self, instance):
        dist, tour = instance
        a = two_opt(tour, dist)
        b = or_opt(a, dist)
        assert (tour_length_matrix(b, dist)
                <= tour_length_matrix(a, dist) + 1e-9)
