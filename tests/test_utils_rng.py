"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = as_rng(42).integers(0, 1000, 10)
        b = as_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_rng(1).integers(0, 10**9, 10)
        b = as_rng(2).integers(0, 10**9, 10)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        assert isinstance(as_rng(ss), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert len(spawn_rngs(0, 0)) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_children_are_independent(self):
        children = spawn_rngs(7, 3)
        draws = [c.integers(0, 10**9, 5) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_deterministic_from_seed(self):
        a = [g.integers(0, 10**9, 3) for g in spawn_rngs(99, 2)]
        b = [g.integers(0, 10**9, 3) for g in spawn_rngs(99, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(1)
        children = spawn_rngs(gen, 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.Generator) for c in children)
