"""Unit tests for the chart-internals (_nice_ticks, _fmt, table pivots)."""


from repro.experiments.config import reduced_settings
from repro.experiments.runner import SweepResult, SweepRow
from repro.experiments.svg_plot import _fmt, _nice_ticks
from repro.experiments.tables import _markdown_table, _pivot


class TestNiceTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0.0, 10.0)
        assert ticks[0] <= 0.0 and ticks[-1] >= 10.0

    def test_monotone_and_uniform(self):
        ticks = _nice_ticks(3.0, 97.0)
        steps = [b - a for a, b in zip(ticks, ticks[1:])]
        assert all(s > 0 for s in steps)
        assert max(steps) - min(steps) < 1e-9

    def test_degenerate_range(self):
        ticks = _nice_ticks(5.0, 5.0)
        assert ticks[0] <= 5.0 <= ticks[-1]

    def test_small_values(self):
        ticks = _nice_ticks(0.001, 0.009)
        assert ticks[0] <= 0.001 and ticks[-1] >= 0.009

    def test_large_values(self):
        ticks = _nice_ticks(30000.0, 90000.0)
        assert 3 <= len(ticks) <= 12

    def test_reasonable_count(self):
        for lo, hi in ((0, 1), (0, 7), (12, 13), (-5, 5)):
            assert 2 <= len(_nice_ticks(lo, hi)) <= 12


class TestFmt:
    def test_zero(self):
        assert _fmt(0.0) == "0"

    def test_plain_numbers(self):
        assert _fmt(5.0) == "5"
        assert _fmt(2.5) == "2.5"

    def test_large_uses_sig_figs(self):
        assert _fmt(30000.0) == "3e+04"

    def test_tiny_uses_sig_figs(self):
        assert _fmt(0.001) == "0.001"


class TestTablePivot:
    def make_result(self):
        rows = [SweepRow("delta", 10.0, "A", 1.0, 0.0, 0.5, 0.0, 1),
                SweepRow("delta", 20.0, "A", 2.0, 0.0, 0.6, 0.0, 1),
                SweepRow("delta", 10.0, "B", 3.0, 0.0, 0.7, 0.0, 1)]
        return SweepResult(config=reduced_settings(), rows=rows)

    def test_pivot_shape(self):
        grid = _pivot(self.make_result(), "mean_volume_gb")
        assert grid[0] == ["delta", "A", "B"]
        assert len(grid) == 3  # header + two delta values

    def test_missing_cell_dash(self):
        grid = _pivot(self.make_result(), "mean_volume_gb")
        # B has no delta=20 row.
        row20 = [r for r in grid[1:] if r[0] == "20"][0]
        assert row20[2] == "-"

    def test_markdown_structure(self):
        grid = _pivot(self.make_result(), "mean_time_s")
        md = _markdown_table(grid)
        lines = md.splitlines()
        assert lines[0].startswith("| delta |")
        assert set(lines[1].replace("|", "")) <= {"-"}
        assert len(lines) == len(grid) + 1
