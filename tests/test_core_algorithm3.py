"""Unit tests for repro.core.algorithm3 (partial collection)."""

import numpy as np
import pytest

from repro.core.algorithm2 import plan_algorithm2
from repro.core.algorithm3 import plan_algorithm3
from repro.core.tour import validate_tour_feasibility
from repro.sim.validate import cross_validate
from repro.utils.errors import InvalidParameterError


class TestFeasibility:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_feasible_all_k(self, small_net, radio, energy, k):
        tour = plan_algorithm3(small_net, energy, radio, delta=25.0, K=k)
        assert validate_tour_feasibility(tour, radio=radio).feasible

    @pytest.mark.parametrize("seed", range(3))
    def test_cross_validates(self, generator, radio, energy, seed):
        net = generator.uniform(16, seed=seed)
        tour = plan_algorithm3(net, energy, radio, delta=25.0, K=3)
        assert cross_validate(tour, radio).ok

    def test_tiny_budget_depot_only(self, small_net, radio):
        from repro.energy.model import EnergyModel
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        tour = plan_algorithm3(small_net, tiny, radio, delta=25.0, K=2)
        assert tour.collected_volume == 0.0

    def test_huge_budget_collects_everything(self, small_net, radio,
                                             roomy_energy):
        tour = plan_algorithm3(small_net, roomy_energy, radio, delta=25.0, K=2)
        assert tour.collected_volume == pytest.approx(small_net.total_volume)

    def test_k_validated(self, small_net, radio, energy):
        with pytest.raises(InvalidParameterError):
            plan_algorithm3(small_net, energy, radio, delta=25.0, K=0)


class TestPartialSemantics:
    def test_partial_collection_happens_under_tight_budget(
            self, generator, radio):
        # With a budget too small to fully drain any cluster, Algorithm 3
        # should still collect *something* partial from some sensor.
        from repro.energy.model import EnergyModel
        net = generator.clustered(12, n_clusters=2, spread=15.0, seed=2)
        e = EnergyModel(capacity=6e3, hover_power=150.0,
                        travel_power=100.0, speed=10.0)
        tour = plan_algorithm3(net, e, radio, delta=25.0, K=4)
        partial = (tour.collected > 1e-6) & (
            tour.collected < net.volumes - 1e-6)
        assert tour.collected_volume > 0
        # At least one sensor is partially (not fully) drained, which the
        # full-collection planners can never do.
        assert partial.any()

    def test_k1_matches_algorithm2_unpolished(self, small_net, radio, energy):
        # The paper: DCM is the K = 1 special case of PDCM.
        a2 = plan_algorithm2(small_net, energy, radio, delta=25.0,
                             polish=False)
        a3 = plan_algorithm3(small_net, energy, radio, delta=25.0, K=1,
                             polish=False)
        assert a3.collected_volume == pytest.approx(a2.collected_volume,
                                                    rel=0.02)

    def test_collected_never_exceeds_stored(self, small_net, radio, energy):
        tour = plan_algorithm3(small_net, energy, radio, delta=25.0, K=3)
        assert (tour.collected <= small_net.volumes + 1e-9).all()

    def test_one_hover_entry_per_site(self, small_net, radio, energy):
        # Lemma 2: upgrades extend an existing hover, never duplicate it.
        tour = plan_algorithm3(small_net, energy, radio, delta=25.0, K=4)
        unique = np.unique(tour.points, axis=0)
        assert len(unique) == len(tour.points)

    def test_monotone_in_budget(self, small_net, radio):
        from repro.energy.model import EnergyModel
        volumes = []
        for cap in (5e3, 1e4, 2e4, 4e4):
            e = EnergyModel(capacity=cap, hover_power=150.0,
                            travel_power=100.0, speed=10.0)
            volumes.append(plan_algorithm3(small_net, e, radio, delta=25.0,
                                           K=2).collected_volume)
        assert all(b >= a - 1e-6 for a, b in zip(volumes, volumes[1:]))


class TestKBehaviour:
    def test_larger_k_never_much_worse(self, generator, radio, energy):
        # The paper reports larger K collects (slightly) more; greedy noise
        # can flip tiny gaps, so assert K=4 is within 2 % of K=1.
        net = generator.uniform(18, seed=8)
        v1 = plan_algorithm3(net, energy, radio, delta=25.0, K=1).collected_volume
        v4 = plan_algorithm3(net, energy, radio, delta=25.0, K=4).collected_volume
        assert v4 >= 0.98 * v1

    def test_meta_records_k(self, small_net, radio, energy):
        tour = plan_algorithm3(small_net, energy, radio, delta=25.0, K=3)
        assert tour.meta["K"] == 3
        assert tour.meta["n_virtual_candidates"] == \
            3 * tour.meta["n_candidates"]

    def test_polish_never_hurts(self, generator, radio, energy):
        net = generator.uniform(18, seed=9)
        raw = plan_algorithm3(net, energy, radio, delta=25.0, K=2,
                              polish=False)
        polished = plan_algorithm3(net, energy, radio, delta=25.0, K=2,
                                   polish=True)
        assert polished.collected_volume >= raw.collected_volume - 1e-6

    def test_iteration_limit_respected(self, small_net, radio, energy):
        tour = plan_algorithm3(small_net, energy, radio, delta=25.0, K=2,
                               max_iterations=3)
        assert tour.meta["iterations"] <= 3
