"""Tests for the run ledger: records, hashing, ambient install, memory.

The load-bearing contracts pinned here:

* :class:`RunRecord` round-trips **losslessly** through ``as_dict`` /
  ``from_dict`` and JSONL (property-tested with hypothesis);
* :func:`config_hash` is key-order-insensitive and survives non-JSON
  values via :func:`sanitize_config`;
* the ambient ledger mirrors the tracer's active-instance pattern —
  ``None`` default, ``ledger_active(None)`` keeps the current one, and
  :func:`record_event` is a no-op returning ``None`` when off.
"""

from __future__ import annotations

import json
import tracemalloc

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.ledger import (
    ENV_LEDGER,
    ENV_LEDGER_MEM,
    Ledger,
    get_ledger,
    install_from_env,
    ledger_active,
    record_event,
    set_ledger,
)
from repro.obs.memprof import PeakMemory, begin_peak_region, end_peak_region
from repro.obs.record import (
    RECORD_VERSION,
    RunRecord,
    canonical_json,
    config_hash,
    environment_fingerprint,
    flatten_perf,
    perf_counter_metrics,
    perf_timer_metrics,
    sanitize_config,
)


@pytest.fixture(autouse=True)
def no_ambient_ledger():
    """Every test starts and ends with the ledger off."""
    previous = set_ledger(None)
    yield
    set_ledger(previous)


def make_record(**overrides):
    defaults = dict(
        event="planner.call", label="algorithm2", config_hash="ab12",
        engine="kernel", jobs=1, wall_s=0.25,
        metrics={"counters": {"kernel.insertions": 7.0},
                 "timers_s": {"kernel.rescore": 0.01}},
        mem_peak_bytes=4096, env={"python": "3.x"},
        extra={"cell": 3}, ts=1.7e9)
    defaults.update(overrides)
    return RunRecord(**defaults)


class TestRunRecord:
    def test_round_trip(self):
        rec = make_record()
        assert RunRecord.from_dict(rec.as_dict()) == rec

    def test_version_stamped(self):
        assert make_record().as_dict()["v"] == RECORD_VERSION

    def test_unknown_field_rejected(self):
        data = make_record().as_dict()
        data["warp"] = 9
        with pytest.raises(ValueError, match="warp"):
            RunRecord.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            RunRecord.from_dict([1, 2])

    def test_deterministic_dict_drops_measured_fields(self):
        det = make_record().deterministic_dict()
        for gone in ("wall_s", "ts", "spans", "mem_peak_bytes", "env"):
            assert gone not in det
        assert det["metrics"] == {"counters": {"kernel.insertions": 7.0}}
        assert det["event"] == "planner.call"
        assert det["config_hash"] == "ab12"

    def test_deterministic_dict_equal_across_reruns(self):
        fast = make_record(wall_s=0.1, ts=1.0, mem_peak_bytes=10)
        slow = make_record(wall_s=9.9, ts=2.0, mem_peak_bytes=99)
        assert fast.deterministic_dict() == slow.deterministic_dict()


class TestConfigHashing:
    def test_canonical_json_sorted_and_minimal(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_hash_key_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_hash_distinguishes_values(self):
        assert config_hash({"n": 40}) != config_hash({"n": 41})

    def test_hash_is_short_hex(self):
        digest = config_hash({"n": 40})
        assert len(digest) == 16
        int(digest, 16)

    def test_canonical_json_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_sanitize_replaces_non_json_values(self):
        class Sites:
            pass
        clean = sanitize_config({"delta": 20.0, "sites": Sites()})
        assert clean == {"delta": 20.0, "sites": "<Sites>"}
        config_hash(clean)  # hashable after sanitising

    def test_sanitize_is_deterministic_across_instances(self):
        class Graph:
            pass
        assert sanitize_config({"g": Graph()}) == \
            sanitize_config({"g": Graph()})


class TestPerfFlattening:
    PERF = {"engine": "kernel", "insertions": 12, "drains": 3,
            "cache_hit": True, "seconds": {"rescore": 0.5, "partial": 0.1}}

    def test_flatten_dots_nested_and_skips_non_numeric(self):
        assert flatten_perf(self.PERF) == {
            "insertions": 12.0, "drains": 3.0,
            "seconds.rescore": 0.5, "seconds.partial": 0.1}

    def test_counter_metrics_drop_seconds_and_namespace(self):
        assert perf_counter_metrics(self.PERF) == {
            "kernel.insertions": 12.0, "kernel.drains": 3.0}

    def test_timer_metrics_keep_only_seconds(self):
        assert perf_timer_metrics(self.PERF) == {
            "kernel.rescore": 0.5, "kernel.partial": 0.1}

    def test_empty_perf(self):
        assert flatten_perf({}) == {}
        assert perf_counter_metrics({}) == {}


class TestLedger:
    def test_in_memory_record_and_len(self):
        ledger = Ledger()
        rec = ledger.record(make_record())
        assert len(ledger) == 1
        assert ledger.records() == [rec]

    def test_records_returns_copy(self):
        ledger = Ledger()
        ledger.record(make_record())
        ledger.records().clear()
        assert len(ledger) == 1

    def test_path_appends_one_json_line_per_record(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = Ledger(path)
        ledger.record(make_record(label="a"))
        ledger.record(make_record(label="b"))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["label"] == "b"

    def test_write_then_read_round_trips(self, tmp_path):
        ledger = Ledger()
        ledger.extend([make_record(label="a"), make_record(label="b")])
        dest = tmp_path / "out.jsonl"
        assert ledger.write(dest) == 2
        assert Ledger.read(dest) == ledger.records()

    def test_read_skips_blank_lines(self, tmp_path):
        dest = tmp_path / "out.jsonl"
        dest.write_text(json.dumps(make_record().as_dict()) + "\n\n")
        assert len(Ledger.read(dest)) == 1

    def test_extend_returns_count(self):
        assert Ledger().extend(make_record() for _ in range(3)) == 3


class TestAmbientLedger:
    def test_off_by_default(self):
        assert get_ledger() is None
        assert record_event("planner.call", label="x") is None

    def test_ledger_active_installs_and_restores(self):
        ledger = Ledger()
        with ledger_active(ledger) as active:
            assert active is ledger
            assert get_ledger() is ledger
        assert get_ledger() is None

    def test_ledger_active_none_keeps_current(self):
        outer = Ledger()
        with ledger_active(outer):
            with ledger_active(None) as active:
                assert active is outer
                assert get_ledger() is outer
            assert get_ledger() is outer

    def test_record_event_stamps_env_and_ts(self):
        with ledger_active(Ledger()) as ledger:
            rec = record_event("sweep.cell", label="Alg 2", wall_s=0.5)
        assert rec is ledger.records()[0]
        assert rec.env == environment_fingerprint()
        assert rec.ts is not None
        assert rec.wall_s == 0.5

    def test_record_event_respects_explicit_env(self):
        with ledger_active(Ledger()):
            rec = record_event("sweep.cell", env={"host": "ci"}, ts=1.0)
        assert rec.env == {"host": "ci"}
        assert rec.ts == 1.0

    def test_nested_scopes_restore_in_order(self):
        outer, inner = Ledger(), Ledger()
        with ledger_active(outer):
            with ledger_active(inner):
                assert get_ledger() is inner
            assert get_ledger() is outer
        assert get_ledger() is None


class TestInstallFromEnv:
    def test_no_variable_is_noop(self):
        assert install_from_env({}) is None
        assert get_ledger() is None

    def test_blank_value_is_noop(self):
        assert install_from_env({ENV_LEDGER: "  "}) is None

    def test_path_installs_ledger(self, tmp_path):
        path = str(tmp_path / "runs.jsonl")
        ledger = install_from_env({ENV_LEDGER: path})
        assert get_ledger() is ledger
        assert ledger.path == tmp_path / "runs.jsonl"
        assert ledger.track_memory is False

    def test_mem_flag_enables_tracking(self, tmp_path):
        env = {ENV_LEDGER: str(tmp_path / "r.jsonl"), ENV_LEDGER_MEM: "1"}
        assert install_from_env(env).track_memory is True

    @pytest.mark.parametrize("falsy", ["0", "false", "no", "off", ""])
    def test_mem_falsy_values_disable(self, tmp_path, falsy):
        env = {ENV_LEDGER: str(tmp_path / "r.jsonl"), ENV_LEDGER_MEM: falsy}
        assert install_from_env(env).track_memory is False


class TestPeakMemory:
    def test_disabled_is_noop(self):
        assert not tracemalloc.is_tracing()
        with PeakMemory(enabled=False) as mem:
            [0] * 10000
        assert mem.peak_bytes is None
        assert not tracemalloc.is_tracing()

    def test_enabled_measures_allocation(self):
        with PeakMemory() as mem:
            blob = [0] * 100_000
        del blob
        assert mem.peak_bytes > 100_000 * 8 * 0.9
        assert not tracemalloc.is_tracing()

    def test_nested_region_does_not_stop_outer(self):
        started = begin_peak_region()
        assert started
        with PeakMemory():                # nested: resets peak, no stop
            pass
        assert tracemalloc.is_tracing()
        assert end_peak_region(started) >= 0
        assert not tracemalloc.is_tracing()


class TestTracerMemory:
    def test_root_spans_stamp_peak_bytes(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer(track_memory=True)
        with tracer.span("outer.region"):
            with tracer.span("inner.step"):
                [0] * 50_000
        by_name = {r["name"]: r for r in tracer.records()}
        assert by_name["outer.region"]["attrs"]["mem_peak_bytes"] > 0
        assert "mem_peak_bytes" not in by_name["inner.step"]["attrs"]
        assert not tracemalloc.is_tracing()

    def test_default_tracer_does_not_touch_tracemalloc(self):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        with tracer.span("outer.region"):
            pass
        rec = tracer.records()[0]
        assert "mem_peak_bytes" not in rec["attrs"]


# --------------------------------------------------------------------- #
# Property: RunRecord JSONL round-trip is lossless.
# --------------------------------------------------------------------- #

json_scalars = st.one_of(
    st.none(), st.booleans(), st.integers(-2**31, 2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32), st.text())
json_payload = st.dictionaries(st.text(min_size=1), json_scalars, max_size=4)
counters = st.dictionaries(
    st.text(min_size=1),
    st.floats(min_value=0, max_value=1e12, allow_nan=False), max_size=4)

records = st.builds(
    RunRecord,
    event=st.sampled_from(["planner.call", "sweep.cell", "bench.case"]),
    label=st.text(max_size=20),
    config_hash=st.text(st.sampled_from("0123456789abcdef"), max_size=16),
    engine=st.none() | st.sampled_from(["kernel", "dense", "batch"]),
    jobs=st.integers(1, 16),
    wall_s=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    metrics=st.fixed_dictionaries({}, optional={"counters": counters}),
    mem_peak_bytes=st.none() | st.integers(0, 2**40),
    env=json_payload,
    extra=json_payload,
    ts=st.none() | st.floats(min_value=0, max_value=2e9, allow_nan=False))


class TestRoundTripProperties:
    @given(rec=records)
    @settings(max_examples=60, deadline=None)
    def test_jsonl_round_trip_lossless(self, rec):
        # The exact pipeline Ledger.record -> Ledger.read uses per line.
        line = json.dumps(rec.as_dict(), sort_keys=True)
        assert RunRecord.from_dict(json.loads(line)) == rec

    @given(rec=records)
    @settings(max_examples=30, deadline=None)
    def test_deterministic_view_survives_round_trip(self, rec):
        back = RunRecord.from_dict(json.loads(json.dumps(rec.as_dict())))
        assert back.deterministic_dict() == rec.deterministic_dict()
