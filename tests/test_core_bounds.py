"""Unit tests for repro.core.bounds."""

import numpy as np
import pytest

from repro.core.bounds import collection_upper_bound, hover_bound, reach_bound
from repro.core.planner import plan_tour
from repro.energy.model import EnergyModel


class TestReachBound:
    def test_all_reachable_with_roomy_battery(self, small_net, radio,
                                              roomy_energy):
        assert reach_bound(small_net, roomy_energy, radio) == pytest.approx(
            small_net.total_volume)

    def test_nothing_reachable_with_tiny_battery(self, small_net, radio):
        tiny = EnergyModel(capacity=1.0, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        # Sensors within R0 of the depot are still "reachable" at zero
        # travel; exclude that case by checking against those volumes only.
        d = np.linalg.norm(small_net.positions - small_net.depot, axis=1)
        free = small_net.volumes[d <= radio.coverage_radius].sum()
        assert reach_bound(small_net, tiny, radio) == pytest.approx(free)

    def test_empty_network(self, generator, radio, energy):
        net = generator.uniform(0, seed=0)
        assert reach_bound(net, energy, radio) == 0.0

    def test_monotone_in_capacity(self, small_net, radio):
        caps = (1e3, 5e3, 2e4, 1e5)
        vals = [reach_bound(small_net,
                            EnergyModel(capacity=c, hover_power=150.0,
                                        travel_power=100.0, speed=10.0),
                            radio)
                for c in caps]
        assert all(b >= a for a, b in zip(vals, vals[1:]))


class TestHoverBound:
    def test_caps_at_storage(self, small_net, radio, roomy_energy):
        hb = hover_bound(small_net, roomy_energy, radio, delta=25.0)
        assert hb <= small_net.total_volume + 1e-6

    def test_zero_battery_zero_bound(self, small_net, radio):
        tiny = EnergyModel(capacity=1e-9, hover_power=150.0,
                           travel_power=100.0, speed=10.0)
        assert hover_bound(small_net, tiny, radio, delta=25.0) < 1.0

    def test_monotone_in_capacity(self, small_net, radio):
        caps = (1e3, 5e3, 2e4, 1e5)
        vals = [hover_bound(small_net,
                            EnergyModel(capacity=c, hover_power=150.0,
                                        travel_power=100.0, speed=10.0),
                            radio, delta=25.0)
                for c in caps]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))


class TestCombinedBound:
    def test_value_is_minimum(self, small_net, radio, energy):
        report = collection_upper_bound(small_net, energy, radio, delta=25.0)
        assert report.value == min(report.storage_bound, report.reach_bound,
                                   report.hover_bound)

    @pytest.mark.parametrize("method,kwargs", [
        ("algorithm1", {"seed": 0, "n_restarts": 2}),
        ("algorithm2", {}),
        ("algorithm3", {"K": 2}),
        ("benchmark", {}),
    ])
    def test_every_planner_below_bound(self, small_net, radio, energy,
                                       method, kwargs):
        extra = {} if method == "benchmark" else {"delta": 25.0}
        tour = plan_tour(small_net, energy, radio, method=method,
                         **extra, **kwargs)
        report = collection_upper_bound(small_net, energy, radio, delta=25.0)
        assert tour.collected_volume <= report.value + 1e-6

    def test_bound_tight_when_everything_collectable(self, small_net, radio,
                                                     roomy_energy):
        report = collection_upper_bound(small_net, roomy_energy, radio,
                                        delta=25.0)
        assert report.value == pytest.approx(small_net.total_volume)
