"""Unit tests for repro.sim.perturb (disturbances + contingency controller)."""

import numpy as np
import pytest

from repro.core.algorithm2 import plan_algorithm2
from repro.sim.perturb import Perturbation, evaluate_robustness, simulate_with_contingency
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def tour(small_net, radio, energy):
    return plan_algorithm2(small_net, energy, radio, delta=25.0)


class TestPerturbationValidation:
    def test_nominal_factory(self):
        p = Perturbation.nominal()
        assert p.speed_factor == 1.0 and p.sensor_dropout == 0.0

    def test_rejects_zero_speed(self):
        with pytest.raises(InvalidParameterError):
            Perturbation(speed_factor=0.0)

    def test_rejects_dropout_above_one(self):
        with pytest.raises(InvalidParameterError):
            Perturbation(sensor_dropout=1.5)


class TestNominalExecution:
    def test_matches_plan(self, tour, radio):
        res = simulate_with_contingency(tour, radio, Perturbation.nominal())
        assert not res.aborted
        assert res.returned_safely
        assert res.collected_volume >= tour.collected_volume - 1e-6
        assert res.energy_spent == pytest.approx(tour.total_energy, rel=1e-9)

    def test_completed_hover_count(self, tour, radio):
        res = simulate_with_contingency(tour, radio)
        assert res.completed_hovers == tour.n_hovers


class TestDisturbances:
    def test_headwind_costs_energy_or_data(self, tour, radio):
        res = simulate_with_contingency(
            tour, radio, Perturbation(speed_factor=0.6))
        # Either the mission aborted early (less data) or it spent more
        # energy than planned — the disturbance must show up somewhere.
        assert res.aborted or res.energy_spent > tour.total_energy - 1e-6
        assert res.returned_safely

    def test_cold_battery_aborts_before_stranding(self, tour, radio):
        res = simulate_with_contingency(
            tour, radio, Perturbation(hover_power_factor=1.6))
        assert res.returned_safely
        assert res.collected_volume <= tour.collected_volume + 1e-6

    def test_interference_reduces_data_not_safety(self, tour, radio):
        res = simulate_with_contingency(
            tour, radio, Perturbation(bandwidth_factor=0.5))
        assert res.returned_safely
        # Hover durations are fixed by the plan; half the rate means the
        # big sensors cannot finish uploading.
        assert res.collected_volume < tour.collected_volume - 1e-6

    def test_full_dropout_collects_nothing(self, tour, radio):
        res = simulate_with_contingency(
            tour, radio, Perturbation(sensor_dropout=1.0))
        assert res.collected_volume == 0.0
        assert res.returned_safely

    def test_partial_dropout_between_bounds(self, tour, radio):
        res = simulate_with_contingency(
            tour, radio, Perturbation(sensor_dropout=0.5, seed=1))
        assert 0.0 <= res.collected_volume <= tour.collected_volume + 1e-6

    def test_dropout_deterministic_given_seed(self, tour, radio):
        a = simulate_with_contingency(
            tour, radio, Perturbation(sensor_dropout=0.3, seed=9))
        b = simulate_with_contingency(
            tour, radio, Perturbation(sensor_dropout=0.3, seed=9))
        np.testing.assert_allclose(a.collected, b.collected)


class TestContingencyController:
    @pytest.mark.parametrize("speed_factor", [0.4, 0.6, 0.8])
    @pytest.mark.parametrize("hover_factor", [1.0, 1.3, 1.8])
    def test_never_strands_the_uav(self, tour, radio, speed_factor,
                                   hover_factor):
        # The controller's contract: across a grid of harsh disturbances,
        # the UAV always makes it home.
        res = simulate_with_contingency(
            tour, radio, Perturbation(speed_factor=speed_factor,
                                      hover_power_factor=hover_factor))
        assert res.returned_safely

    def test_reserve_tightens_the_mission(self, tour, radio):
        free = simulate_with_contingency(tour, radio, Perturbation.nominal(),
                                         reserve_fraction=0.0)
        held = simulate_with_contingency(tour, radio, Perturbation.nominal(),
                                         reserve_fraction=0.4)
        assert held.collected_volume <= free.collected_volume + 1e-6

    def test_reserve_validated(self, tour, radio):
        with pytest.raises(InvalidParameterError):
            simulate_with_contingency(tour, radio, reserve_fraction=1.5)

    def test_abort_index_when_aborting(self, tour, radio):
        res = simulate_with_contingency(
            tour, radio, Perturbation(hover_power_factor=2.5))
        if res.aborted:
            assert 1 <= res.aborted_at <= len(tour.points)
            assert res.completed_hovers < tour.n_hovers


class TestEvaluateRobustness:
    def test_rows_and_fractions(self, tour, radio):
        rows = evaluate_robustness(
            tour, radio,
            [Perturbation.nominal(), Perturbation(speed_factor=0.5)],
            labels=["nominal", "headwind"])
        assert [r.label for r in rows] == ["nominal", "headwind"]
        assert rows[0].fraction_of_plan >= 1.0 - 1e-9
        assert all(r.returned_safely for r in rows)

    def test_label_length_validated(self, tour, radio):
        with pytest.raises(InvalidParameterError):
            evaluate_robustness(tour, radio, [Perturbation.nominal()],
                                labels=["a", "b"])
