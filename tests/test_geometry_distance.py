"""Unit tests for repro.geometry.distance."""

import numpy as np
import pytest

from repro.geometry.distance import (
    cross_distances,
    euclidean,
    pairwise_distances,
    path_length,
    tour_length,
)
from repro.utils.errors import InvalidParameterError


class TestEuclidean:
    def test_unit_distance(self):
        assert euclidean((0, 0), (1, 0)) == 1.0

    def test_diagonal(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_zero_distance(self):
        assert euclidean((2, 3), (2, 3)) == 0.0

    def test_symmetry(self):
        assert euclidean((1, 2), (5, -3)) == euclidean((5, -3), (1, 2))


class TestPairwiseDistances:
    def test_shape(self, rng):
        pts = rng.uniform(0, 10, (7, 2))
        assert pairwise_distances(pts).shape == (7, 7)

    def test_zero_diagonal(self, rng):
        d = pairwise_distances(rng.uniform(0, 10, (5, 2)))
        np.testing.assert_array_equal(np.diag(d), 0.0)

    def test_exactly_symmetric(self, rng):
        d = pairwise_distances(rng.uniform(0, 10, (6, 2)))
        np.testing.assert_array_equal(d, d.T)

    def test_matches_scalar_euclidean(self, rng):
        pts = rng.uniform(0, 10, (4, 2))
        d = pairwise_distances(pts)
        for i in range(4):
            for j in range(4):
                assert d[i, j] == pytest.approx(euclidean(pts[i], pts[j]))

    def test_triangle_inequality(self, rng):
        d = pairwise_distances(rng.uniform(0, 100, (10, 2)))
        for i in range(10):
            for j in range(10):
                for k in range(10):
                    assert d[i, k] <= d[i, j] + d[j, k] + 1e-9

    def test_single_point(self):
        d = pairwise_distances([[1.0, 2.0]])
        assert d.shape == (1, 1) and d[0, 0] == 0.0

    def test_rejects_nan(self):
        with pytest.raises(InvalidParameterError):
            pairwise_distances([[0, np.nan]])


class TestCrossDistances:
    def test_shape(self, rng):
        a = rng.uniform(0, 10, (3, 2))
        b = rng.uniform(0, 10, (5, 2))
        assert cross_distances(a, b).shape == (3, 5)

    def test_values(self):
        d = cross_distances([[0, 0]], [[3, 4], [0, 1]])
        np.testing.assert_allclose(d, [[5.0, 1.0]])

    def test_consistent_with_pairwise(self, rng):
        pts = rng.uniform(0, 10, (6, 2))
        full = pairwise_distances(pts)
        cross = cross_distances(pts[:3], pts[3:])
        np.testing.assert_allclose(cross, full[:3, 3:])


class TestPathAndTourLength:
    def test_empty_path(self):
        assert path_length(np.empty((0, 2))) == 0.0

    def test_single_point_path(self):
        assert path_length([[1, 1]]) == 0.0

    def test_open_path(self):
        assert path_length([[0, 0], [3, 4], [3, 0]]) == pytest.approx(9.0)

    def test_tour_closes(self):
        # Unit square: open path 3, closed tour 4.
        square = [[0, 0], [1, 0], [1, 1], [0, 1]]
        assert path_length(square) == pytest.approx(3.0)
        assert tour_length(square) == pytest.approx(4.0)

    def test_two_point_tour_is_out_and_back(self):
        assert tour_length([[0, 0], [0, 5]]) == pytest.approx(10.0)

    def test_single_point_tour(self):
        assert tour_length([[7, 7]]) == 0.0

    def test_tour_rotation_invariant(self, rng):
        pts = rng.uniform(0, 10, (6, 2))
        assert tour_length(pts) == pytest.approx(tour_length(np.roll(pts, 2, axis=0)))
