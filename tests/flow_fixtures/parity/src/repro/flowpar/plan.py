"""Dispatch-surface pairs for the ``flow-parity`` signature fixtures.

* ``plan_fix`` / ``plan_fix_batch`` — **true positive**: the batch
  variant drops the ``sites`` kwarg (``engine`` is dispatch-only and
  legitimately absent; ``energy`` -> ``energies`` is the sanctioned
  structural rename);
* ``plan_quiet`` / ``plan_quiet_batch`` — **suppressed**: same gap,
  sanctioned by an inline ``allow`` directive;
* ``plan_ok`` / ``plan_ok_batch`` — **negative**: surfaces agree.
"""

from __future__ import annotations

__all__ = ["plan_fix", "plan_fix_batch", "plan_ok", "plan_ok_batch",
           "plan_quiet", "plan_quiet_batch"]


def plan_fix(network, energy, *, polish: bool = True, sites: int = 0,
             engine: str = "dense") -> list:
    """Base surface of the drifting pair."""
    return [network, energy, polish, sites, engine]


def plan_fix_batch(network, energies, *, polish: bool = True) -> list:
    """Batch surface missing ``sites`` (true positive)."""
    return [network, energies, polish]


def plan_quiet(network, energy, *, sites: int = 0) -> list:
    """Base surface of the sanctioned pair."""
    return [network, energy, sites]


# repro: allow[flow-parity] -- fixture: suppressed on purpose
def plan_quiet_batch(network, energies) -> list:
    """Batch surface missing ``sites``, allowed inline (suppressed)."""
    return [network, energies]


def plan_ok(network, energy, *, scoring: str = "greedy",
            engine: str = "dense") -> list:
    """Base surface of the clean pair (negative)."""
    return [network, energy, scoring, engine]


def plan_ok_batch(network, energies, *, scoring: str = "greedy") -> list:
    """Batch surface agreeing with the base (negative)."""
    return [network, energies, scoring]
