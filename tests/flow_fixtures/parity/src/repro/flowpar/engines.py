"""Engine family for the ``flow-parity`` perf-contract fixtures.

Two kernels of one family (``repro.flowpar``): ``AKernel`` registers the
family's counters and publishes the full ``perf()`` contract, while
``BKernel.perf`` deliberately omits the ``flushes`` key — the drift the
rule must report against the family contract
``{engine, seconds, steps, flushes}``.
"""

from __future__ import annotations

__all__ = ["ENGINES", "AKernel", "BKernel", "CKernel"]

#: Engine names of this fixture family.
ENGINES = ("afix", "bfix", "cfix")


class AKernel:
    """Reference engine: registers counters, publishes the full contract."""

    def __init__(self, metrics):
        self.metrics = metrics
        for name in ("steps", "flushes"):
            self.metrics.counter(name)

    def perf(self) -> dict:
        """Full perf payload (negative: contract satisfied)."""
        return {"engine": "afix", "steps": 1, "flushes": 2, "seconds": {}}


class BKernel:
    """Drifting engine: ``perf`` omits ``flushes`` (true positive)."""

    def perf(self) -> dict:
        """Partial perf payload missing a registered counter."""
        return {"engine": "bfix", "steps": 3, "seconds": {}}


class CKernel:
    """Drifting engine whose gap is sanctioned inline (suppressed)."""

    def perf(self) -> dict:
        """Partial perf payload, allowed for this fixture."""
        # repro: allow[flow-parity] -- fixture: suppressed on purpose
        return {"engine": "cfix", "flushes": 0, "seconds": {}}
