"""Planner fixtures exercising every ``flow-determinism`` verdict.

* :func:`plan_fixture` — **true positive**: wall-clock taint from
  :func:`repro.flowfix.clock.jitter` crosses two function boundaries
  (``jitter -> _pad -> plan_fixture``) before reaching the planner
  return value;
* :func:`trace_fixture` — **true positive**: the same taint lands on a
  traced span attribute;
* :func:`unstable_key` — **suppressed**: an ``id()``-based cache key
  with an inline ``allow`` directive;
* :func:`plan_quiet` / :func:`stable_key` — **negatives**: ordering is
  neutralised by ``sorted`` and the key is built from stable data.
"""

from __future__ import annotations

from repro.flowfix.clock import jitter

__all__ = ["plan_fixture", "plan_quiet", "stable_key", "trace_fixture",
           "unstable_key"]


def _pad(base: float) -> float:
    """Intermediate hop between the clock source and the planner sink."""
    return base + jitter()


def plan_fixture(n: int) -> "CollectionTour":
    """Deliberately nondeterministic planner (true positive)."""
    return _pad(float(n))


def plan_quiet(sites: list) -> "CollectionTour":
    """Deterministic planner: sorted input, no sources (negative)."""
    return sorted(sites)


def trace_fixture(tracer, n: int) -> None:
    """Span attribute fed from the wall clock (true positive)."""
    tracer.span("fix.plan", pad=_pad(float(n)))


def unstable_key(obj: object) -> str:
    """An ``id()`` cache key, sanctioned for this fixture (suppressed)."""
    # repro: allow[flow-determinism] -- fixture: suppressed on purpose
    return str(id(obj))


def stable_key(name: str) -> str:
    """A cache key built from stable data only (negative)."""
    return "site:" + name
