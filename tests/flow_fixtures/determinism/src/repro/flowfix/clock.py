"""Wall-clock helper for the ``flow-determinism`` fixture package.

:func:`jitter` is the nondeterminism *source* of the fixture: its return
value carries wall-clock taint, which the planner module then threads
through a private helper into a planner return — the multi-hop path the
rule must reconstruct.
"""

from __future__ import annotations

import time

__all__ = ["jitter"]


def jitter() -> float:
    """A nondeterministic pad read from the wall clock."""
    return time.perf_counter() % 1.0
