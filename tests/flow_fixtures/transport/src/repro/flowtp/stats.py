"""Aggregation helper for the ``flow-transport`` fixture package.

:func:`summarize` is unannotated on purpose: the JSON-safety lattice has
to classify it by recursively classifying its return expression, where
the ``np.mean`` call makes the dict value a numpy scalar — the classic
"works locally, breaks ``json.dumps`` in the worker" bug.
"""

from __future__ import annotations

import numpy as np

__all__ = ["summarize"]


def summarize(values):
    """Mean of *values* — as a numpy scalar, which JSON cannot encode."""
    return {"mean": np.mean(values)}
