"""Worker-boundary fixtures exercising every ``flow-transport`` verdict.

* :func:`work_unit` — **true positive**: the worker entry returns the
  result of :func:`repro.flowtp.stats.summarize`, whose numpy scalar is
  only visible by following the call (multi-hop evidence);
* :func:`noisy_unit` — **suppressed**: returns ``bytes`` across the
  boundary under an inline ``allow`` directive;
* :func:`clean_unit` — **negative**: provably JSON-safe scalars only.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

from repro.flowtp.stats import summarize

__all__ = ["clean_unit", "noisy_unit", "run_pool", "work_unit"]


def work_unit(values):
    """Worker entry whose return hides a numpy scalar (true positive)."""
    return summarize(values)


def clean_unit(values):
    """Worker entry returning plain JSON scalars (negative)."""
    return {"mean": float(sum(values)) / max(len(values), 1)}


def noisy_unit(payload: bytes):
    """Worker entry shipping raw bytes back, sanctioned here (suppressed)."""
    # repro: allow[flow-transport] -- fixture: suppressed on purpose
    return payload


def run_pool(groups, raw):
    """Submission site that makes the three entries worker entries."""
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work_unit, group) for group in groups]
        futures += [pool.submit(clean_unit, group) for group in groups]
        futures.append(pool.submit(noisy_unit, raw))
        return [future.result() for future in futures]
