"""Unit tests for repro.network.generator."""

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.network.generator import (
    PAPER_VOLUME_RANGE,
    NetworkGenerator,
    clustered_network,
    grid_network,
    paper_default_network,
    uniform_network,
)
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def gen():
    return NetworkGenerator(Region.square(200.0), volume_range=(10.0, 20.0))


class TestUniform:
    def test_count_and_containment(self, gen):
        net = gen.uniform(30, seed=1)
        assert net.n_nodes == 30
        assert net.region.contains(net.positions).all()

    def test_volumes_in_range(self, gen):
        net = gen.uniform(50, seed=2)
        assert (net.volumes >= 10.0).all() and (net.volumes <= 20.0).all()

    def test_deterministic(self, gen):
        a, b = gen.uniform(10, seed=5), gen.uniform(10, seed=5)
        np.testing.assert_array_equal(a.positions, b.positions)
        np.testing.assert_array_equal(a.volumes, b.volumes)

    def test_seeds_differ(self, gen):
        a, b = gen.uniform(10, seed=1), gen.uniform(10, seed=2)
        assert not np.array_equal(a.positions, b.positions)

    def test_default_depot_is_region_center(self, gen):
        net = gen.uniform(5, seed=0)
        np.testing.assert_allclose(net.depot, [100.0, 100.0])

    def test_custom_depot(self):
        g = NetworkGenerator(Region.square(100.0), depot=(0.0, 0.0))
        np.testing.assert_array_equal(g.uniform(3, seed=0).depot, [0.0, 0.0])

    def test_zero_nodes(self, gen):
        assert gen.uniform(0, seed=0).n_nodes == 0

    def test_rejects_negative_count(self, gen):
        with pytest.raises(InvalidParameterError):
            gen.uniform(-1)


class TestClustered:
    def test_count(self, gen):
        assert gen.clustered(24, n_clusters=4, seed=3).n_nodes == 24

    def test_clipped_to_region(self, gen):
        net = gen.clustered(60, n_clusters=2, spread=500.0, seed=4)
        assert net.region.contains(net.positions).all()

    def test_clustering_is_tighter_than_uniform(self):
        # Mean nearest-neighbour distance should be much smaller for
        # clustered deployments of the same size.
        g = NetworkGenerator(Region.square(1000.0))
        uni = g.uniform(60, seed=9)
        clu = g.clustered(60, n_clusters=3, spread=20.0, seed=9)

        def mean_nn(points):
            from scipy.spatial import cKDTree
            d, _ = cKDTree(points).query(points, k=2)
            return d[:, 1].mean()

        assert mean_nn(clu.positions) < 0.5 * mean_nn(uni.positions)

    def test_rejects_zero_clusters(self, gen):
        with pytest.raises(InvalidParameterError):
            gen.clustered(10, n_clusters=0)

    def test_rejects_non_positive_spread(self, gen):
        with pytest.raises(InvalidParameterError):
            gen.clustered(10, spread=0.0)


class TestGrid:
    def test_lattice_count(self, gen):
        assert gen.grid(4, 5, seed=0).n_nodes == 20

    def test_no_jitter_is_regular(self, gen):
        net = gen.grid(2, 2, jitter=0.0)
        expected = np.array([[50.0, 50.0], [150.0, 50.0],
                             [50.0, 150.0], [150.0, 150.0]])
        np.testing.assert_allclose(np.sort(net.positions, axis=0),
                                   np.sort(expected, axis=0))

    def test_jitter_moves_points(self, gen):
        a = gen.grid(3, 3, jitter=0.0)
        b = gen.grid(3, 3, jitter=5.0, seed=1)
        assert not np.allclose(a.positions, b.positions)

    def test_jitter_clipped(self, gen):
        net = gen.grid(3, 3, jitter=1000.0, seed=2)
        assert net.region.contains(net.positions).all()

    def test_rejects_zero_rows(self, gen):
        with pytest.raises(InvalidParameterError):
            gen.grid(0, 3)


class TestConvenienceWrappers:
    def test_paper_default(self):
        net = paper_default_network(40, seed=1)
        assert net.n_nodes == 40
        assert net.region.width == 1000.0
        lo, hi = PAPER_VOLUME_RANGE
        assert (net.volumes >= lo).all() and (net.volumes <= hi).all()

    def test_uniform_wrapper(self):
        assert uniform_network(7, seed=0).n_nodes == 7

    def test_clustered_wrapper(self):
        assert clustered_network(9, n_clusters=3, seed=0).n_nodes == 9

    def test_grid_wrapper(self):
        assert grid_network(2, 3, seed=0).n_nodes == 6

    def test_inverted_volume_range_rejected(self):
        g = NetworkGenerator(Region.square(10), volume_range=(20.0, 10.0))
        with pytest.raises(InvalidParameterError):
            g.uniform(5, seed=0)
