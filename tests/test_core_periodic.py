"""Unit tests for the periodic multi-round collection extension."""

import numpy as np
import pytest

from repro.core.periodic import run_periodic_collection
from repro.energy.model import EnergyModel
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def fast_energy():
    """A battery that comfortably clears a small instance each round."""
    return EnergyModel(capacity=1e5, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


@pytest.fixture
def weak_energy():
    """A battery that cannot keep up with regeneration."""
    return EnergyModel(capacity=3e3, hover_power=150.0,
                       travel_power=100.0, speed=10.0)


class TestMechanics:
    def test_round_count(self, small_net, radio, fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=4, delta=25.0)
        assert len(report.rounds) == 4
        assert [r.round_index for r in report.rounds] == [0, 1, 2, 3]

    def test_conservation_per_round(self, small_net, radio, fast_energy):
        # backlog_after = backlog_before + generated - overflow - collected.
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=3, delta=25.0)
        prev = small_net.total_volume
        for r in report.rounds:
            expected = prev + r.generated - r.overflowed - r.collected
            assert r.backlog_after == pytest.approx(expected, abs=1e-6)
            prev = r.backlog_after

    def test_start_empty(self, small_net, radio, fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=2, delta=25.0,
                                         start_empty=True)
        # First round backlog is exactly one period of generation minus
        # whatever was collected.
        r0 = report.rounds[0]
        assert r0.backlog_after == pytest.approx(
            r0.generated - r0.collected, abs=1e-6)

    def test_default_rates_regenerate_initial_volumes(self, small_net, radio,
                                                      fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=1, delta=25.0)
        assert report.rounds[0].generated == pytest.approx(
            small_net.total_volume)

    def test_custom_rates(self, small_net, radio, fast_energy):
        rates = np.full(small_net.n_nodes, 0.1)
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         rates=rates, period=100.0,
                                         n_rounds=1, delta=25.0)
        assert report.rounds[0].generated == pytest.approx(
            0.1 * 100.0 * small_net.n_nodes)

    def test_rate_shape_validated(self, small_net, radio, fast_energy):
        with pytest.raises(InvalidParameterError):
            run_periodic_collection(small_net, fast_energy, radio,
                                    rates=np.array([1.0]), n_rounds=1)

    def test_negative_rate_rejected(self, small_net, radio, fast_energy):
        rates = np.full(small_net.n_nodes, -0.1)
        with pytest.raises(InvalidParameterError):
            run_periodic_collection(small_net, fast_energy, radio,
                                    rates=rates, n_rounds=1)


class TestBufferOverflow:
    def test_overflow_tracked(self, small_net, radio, weak_energy):
        report = run_periodic_collection(small_net, weak_energy, radio,
                                         n_rounds=4, delta=25.0,
                                         buffer_limit=300.0)
        assert report.total_lost > 0
        # Buffers never exceed the cap after clamping.
        assert (report.final_backlog <= 300.0 + 1e-6).all()

    def test_no_limit_no_loss(self, small_net, radio, weak_energy):
        report = run_periodic_collection(small_net, weak_energy, radio,
                                         n_rounds=3, delta=25.0)
        assert report.total_lost == 0.0


class TestSustainability:
    def test_strong_uav_is_sustainable(self, small_net, radio, fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=8, delta=25.0)
        assert report.is_sustainable()

    def test_weak_uav_is_not(self, small_net, radio, weak_energy):
        report = run_periodic_collection(small_net, weak_energy, radio,
                                         n_rounds=8, delta=25.0)
        assert not report.is_sustainable()
        # Backlog grows round over round.
        traj = report.backlog_trajectory
        assert traj[-1] > traj[0]

    def test_sustainability_needs_enough_rounds(self, small_net, radio,
                                                fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=3, delta=25.0)
        with pytest.raises(InvalidParameterError):
            report.is_sustainable(tail=3)

    def test_total_collected_aggregates(self, small_net, radio, fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=3, delta=25.0)
        assert report.total_collected == pytest.approx(
            sum(r.collected for r in report.rounds))

    def test_benchmark_method_supported(self, small_net, radio, fast_energy):
        report = run_periodic_collection(small_net, fast_energy, radio,
                                         n_rounds=2, method="benchmark")
        assert len(report.rounds) == 2

    def test_algorithm3_method_supported(self, small_net, radio, fast_energy):
        report = run_periodic_collection(
            small_net, fast_energy, radio, n_rounds=2, method="algorithm3",
            delta=25.0, planner_kwargs={"K": 2})
        assert len(report.rounds) == 2
