"""Tests for the benchmark observatory: registry, harness, CLI, gate.

End-to-end gate correctness is pinned here the way ISSUE acceptance asks:
an injected slowdown (``REPRO_BENCH_INJECT_SLEEP_S``) must fail
``repro-bench compare --gate``, and an identical re-run must pass it.
Real planner workloads are kept to one cheap case; everything else runs
on synthetic registered cases so the file stays fast.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    ENV_INJECT_SLEEP,
    BenchCase,
    _REGISTRY,
    get_case,
    register_case,
    run_case,
    run_suite,
    suite_cases,
    suites,
)
from repro.obs.cli import bench_main, main
from repro.obs.ledger import Ledger, get_ledger, ledger_active, set_ledger
from repro.obs.record import config_hash


@pytest.fixture(autouse=True)
def clean_ambient_ledger():
    previous = set_ledger(None)
    yield
    set_ledger(previous)


@pytest.fixture
def synthetic_case():
    """A registered no-op case in its own suite, removed afterwards."""
    case = BenchCase(
        name="test.noop", suites=("_test_suite",),
        config={"n": 1},
        fn=lambda: {"counters": {"kernel.ops": 3.0}, "engine": "kernel",
                    "extra": {"rows": 1}})
    register_case(case)
    yield case
    _REGISTRY.pop(case.name, None)


class TestRegistry:
    def test_smoke_suite_registered(self):
        assert "smoke" in suites()
        names = [c.name for c in suite_cases("smoke")]
        assert "plan.alg2_kernel" in names
        assert "sweep.fig5_batch" in names

    def test_duplicate_name_rejected(self, synthetic_case):
        with pytest.raises(ValueError, match="already registered"):
            register_case(synthetic_case)

    def test_get_case(self, synthetic_case):
        assert get_case("test.noop") is synthetic_case
        with pytest.raises(KeyError):
            get_case("test.unknown")

    def test_suite_cases_empty_for_unknown(self):
        assert suite_cases("no_such_suite") == []


class TestRunCase:
    def test_emits_one_record_per_repeat(self, synthetic_case):
        with ledger_active(Ledger()):
            records = run_case(synthetic_case, repeats=3, suite="s")
        assert [r.extra["repeat"] for r in records] == [0, 1, 2]
        for r in records:
            assert r.event == "bench.case"
            assert r.label == "test.noop"
            assert r.config_hash == config_hash(synthetic_case.config)
            assert r.engine == "kernel"
            assert r.metrics["counters"] == {"kernel.ops": 3.0}
            assert r.extra["suite"] == "s"
            assert r.extra["rows"] == 1
            assert r.wall_s >= 0.0

    def test_without_ledger_returns_nothing(self, synthetic_case):
        assert run_case(synthetic_case) == []

    def test_track_memory_stamps_peak(self, synthetic_case):
        with ledger_active(Ledger()):
            records = run_case(synthetic_case, track_memory=True)
        assert records[0].mem_peak_bytes is not None

    def test_memory_off_by_default(self, synthetic_case):
        with ledger_active(Ledger()):
            records = run_case(synthetic_case)
        assert records[0].mem_peak_bytes is None

    def test_injected_sleep_inflates_wall(self, synthetic_case, monkeypatch):
        monkeypatch.setenv(ENV_INJECT_SLEEP, "0.05")
        with ledger_active(Ledger()):
            records = run_case(synthetic_case)
        assert records[0].wall_s >= 0.05


class TestRunSuite:
    def test_unknown_suite_raises(self):
        with pytest.raises(ValueError, match="unknown or empty"):
            run_suite("no_such_suite")

    def test_runs_every_case_into_fresh_ledger(self, synthetic_case):
        lines = []
        ledger = run_suite("_test_suite", repeats=2, progress=lines.append)
        assert len(ledger) == 2
        assert get_ledger() is None        # scope restored
        assert len(lines) == 1
        assert lines[0].startswith("test.noop: 2 run(s)")

    def test_streams_into_given_ledger(self, synthetic_case, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = run_suite("_test_suite", ledger=Ledger(path))
        assert ledger.path == path
        assert len(Ledger.read(path)) == 1

    def test_real_planner_case_counts_kernel_work(self):
        # One cheap real workload end-to-end: the adapter wiring from
        # plan_tour's meta["perf"] into ledger counters.
        with ledger_active(Ledger()):
            records = run_case(get_case("plan.alg2_kernel"), suite="smoke")
        rec = records[0]
        assert rec.engine == "kernel"
        assert rec.metrics["counters"]["kernel.insertions"] > 0
        assert rec.extra["collected_gb"] > 0


def write_ledger(path, records):
    ledger = Ledger()
    ledger.extend(records)
    ledger.write(path)
    return path


def fake_records(wall_s=1.0, ops=100.0):
    from repro.obs.record import RunRecord
    return [RunRecord(event="bench.case", label="test.gate",
                      config_hash="feed", wall_s=wall_s,
                      metrics={"counters": {"kernel.ops": ops}})]


class TestCompareCli:
    def test_missing_file_is_usage_error(self, tmp_path):
        ok = write_ledger(tmp_path / "ok.jsonl", fake_records())
        assert main(["compare", str(ok), str(tmp_path / "nope.jsonl")]) == 2

    def test_identical_ledgers_gate_passes(self, tmp_path, capsys):
        old = write_ledger(tmp_path / "old.jsonl", fake_records())
        new = write_ledger(tmp_path / "new.jsonl", fake_records())
        assert main(["compare", str(old), str(new), "--gate"]) == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_regression_fails_gate_only_with_flag(self, tmp_path, capsys):
        old = write_ledger(tmp_path / "old.jsonl", fake_records(wall_s=0.1))
        new = write_ledger(tmp_path / "new.jsonl", fake_records(wall_s=0.9))
        assert main(["compare", str(old), str(new)]) == 0
        assert main(["compare", str(old), str(new), "--gate"]) == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_threshold_overrides(self, tmp_path):
        old = write_ledger(tmp_path / "old.jsonl", fake_records(wall_s=0.1))
        new = write_ledger(tmp_path / "new.jsonl", fake_records(wall_s=0.15))
        args = ["compare", str(old), str(new), "--gate"]
        assert main(args) == 0
        assert main(args + ["--time-ratio", "1.2"]) == 1

    def test_counter_gate_via_cli(self, tmp_path):
        old = write_ledger(tmp_path / "old.jsonl", fake_records(ops=100.0))
        new = write_ledger(tmp_path / "new.jsonl", fake_records(ops=150.0))
        assert main(["compare", str(old), str(new), "--gate"]) == 1

    def test_json_format(self, tmp_path, capsys):
        old = write_ledger(tmp_path / "old.jsonl", fake_records())
        new = write_ledger(tmp_path / "new.jsonl", fake_records())
        assert main(["compare", str(old), str(new),
                     "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["passed"] is True
        assert data["cases"][0]["label"] == "test.gate"


class TestBenchCli:
    def test_unknown_suite_is_usage_error(self, tmp_path, capsys):
        out = tmp_path / "ledger.jsonl"
        assert main(["bench", "--suite", "no_such", "--out", str(out)]) == 2
        assert "unknown or empty" in capsys.readouterr().err

    def test_bench_writes_fresh_ledger(self, synthetic_case, tmp_path):
        out = tmp_path / "ledger.jsonl"
        out.write_text("stale\n")
        assert main(["bench", "--suite", "_test_suite",
                     "--out", str(out), "--repeats", "2"]) == 0
        records = Ledger.read(out)
        assert len(records) == 2          # stale content replaced

    def test_bench_mem_flag(self, synthetic_case, tmp_path):
        out = tmp_path / "ledger.jsonl"
        assert main(["bench", "--suite", "_test_suite",
                     "--out", str(out), "--mem"]) == 0
        assert Ledger.read(out)[0].mem_peak_bytes is not None


class TestReproBenchEntryPoint:
    def test_no_command_prints_help(self, capsys):
        assert bench_main([]) == 2
        assert "repro-bench" in capsys.readouterr().out

    def test_run_then_gate_round_trip(self, synthetic_case, tmp_path,
                                      monkeypatch, capsys):
        base = tmp_path / "base.jsonl"
        fresh = tmp_path / "fresh.jsonl"
        slow = tmp_path / "slow.jsonl"
        assert bench_main(["run", "--suite", "_test_suite",
                           "--out", str(base)]) == 0
        # Identical re-run passes the gate...
        assert bench_main(["run", "--suite", "_test_suite",
                           "--out", str(fresh)]) == 0
        assert bench_main(["compare", str(base), str(fresh), "--gate"]) == 0
        # ...and an injected slowdown fails it.
        monkeypatch.setenv(ENV_INJECT_SLEEP, "0.2")
        assert bench_main(["run", "--suite", "_test_suite",
                           "--out", str(slow)]) == 0
        monkeypatch.delenv(ENV_INJECT_SLEEP)
        capsys.readouterr()
        assert bench_main(["compare", str(base), str(slow), "--gate",
                           "--min-time-s", "1e-6", "--time-ratio", "3"]) == 1
        assert "gate: FAIL" in capsys.readouterr().out

    def test_console_script_registered(self):
        from pathlib import Path
        # pyproject declares the entry point the CI workflow invokes.
        text = Path(__file__).resolve().parents[1].joinpath(
            "pyproject.toml").read_text()
        assert 'repro-bench = "repro.obs.cli:bench_main"' in text
