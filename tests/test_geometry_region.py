"""Unit tests for repro.geometry.region."""

import numpy as np
import pytest

from repro.geometry.region import Region
from repro.utils.errors import InvalidParameterError


class TestConstruction:
    def test_default_is_paper_square(self):
        r = Region()
        assert r.width == 1000.0 and r.height == 1000.0

    def test_square_factory(self):
        r = Region.square(250.0, origin=(10.0, 20.0))
        assert (r.xmin, r.xmax, r.ymin, r.ymax) == (10.0, 260.0, 20.0, 270.0)

    def test_rejects_degenerate_x(self):
        with pytest.raises(InvalidParameterError):
            Region(5.0, 5.0, 0.0, 1.0)

    def test_rejects_inverted_y(self):
        with pytest.raises(InvalidParameterError):
            Region(0.0, 1.0, 2.0, 1.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(InvalidParameterError):
            Region(0.0, float("inf"), 0.0, 1.0)

    def test_area_and_center(self):
        r = Region(0, 4, 0, 2)
        assert r.area == 8.0
        np.testing.assert_array_equal(r.center, [2.0, 1.0])


class TestContains:
    def test_interior(self):
        r = Region.square(10)
        assert r.contains([[5, 5]])[0]

    def test_boundary_inclusive(self):
        r = Region.square(10)
        assert r.contains([[0, 0]])[0]
        assert r.contains([[10, 10]])[0]

    def test_outside(self):
        r = Region.square(10)
        assert not r.contains([[10.001, 5]])[0]

    def test_vectorised(self):
        r = Region.square(10)
        mask = r.contains([[5, 5], [-1, 5], [5, 11]])
        np.testing.assert_array_equal(mask, [True, False, False])


class TestSampling:
    def test_sample_count_and_containment(self):
        r = Region.square(100)
        pts = r.sample_uniform(200, seed=1)
        assert pts.shape == (200, 2)
        assert r.contains(pts).all()

    def test_sample_deterministic(self):
        r = Region.square(100)
        np.testing.assert_array_equal(r.sample_uniform(10, seed=3),
                                      r.sample_uniform(10, seed=3))

    def test_sample_zero(self):
        assert Region.square(10).sample_uniform(0).shape == (0, 2)

    def test_sample_negative_rejected(self):
        with pytest.raises(InvalidParameterError):
            Region.square(10).sample_uniform(-1)

    def test_sample_covers_region_roughly(self):
        # Mean of many uniform draws should be near the centre.
        r = Region.square(100)
        pts = r.sample_uniform(5000, seed=0)
        np.testing.assert_allclose(pts.mean(axis=0), [50, 50], atol=3.0)


class TestClip:
    def test_clip_moves_outsiders_to_border(self):
        r = Region.square(10)
        clipped = r.clip([[-5, 5], [15, 5], [5, 20]])
        np.testing.assert_array_equal(clipped, [[0, 5], [10, 5], [5, 10]])

    def test_clip_keeps_insiders(self):
        r = Region.square(10)
        np.testing.assert_array_equal(r.clip([[3, 4]]), [[3, 4]])

    def test_clip_does_not_mutate_input(self):
        r = Region.square(10)
        original = np.array([[-5.0, 5.0]])
        r.clip(original)
        np.testing.assert_array_equal(original, [[-5.0, 5.0]])
