"""``plan_tour`` kwarg validation: unknown methods, stray options, and
``engine=`` passthrough to every engine-aware planner."""

from __future__ import annotations

import pytest

from repro.core.kernel import ENGINES
from repro.core.planner import PLANNERS, plan_tour
from repro.utils.errors import InvalidParameterError


class TestMethodValidation:
    def test_unknown_method_raises_and_names_the_registry(
            self, small_net, energy, radio):
        with pytest.raises(InvalidParameterError) as exc:
            plan_tour(small_net, energy, radio, method="algorithm7")
        message = str(exc.value)
        assert "algorithm7" in message
        for known in PLANNERS:
            assert known in message

    def test_method_is_keyword_only(self, small_net, energy, radio):
        with pytest.raises(TypeError):
            plan_tour(small_net, energy, radio, "algorithm2")

    def test_every_registered_method_dispatches(self, tiny_net, energy,
                                                radio):
        for method in PLANNERS:
            tour = plan_tour(tiny_net, energy, radio, method=method,
                             delta=25.0)
            assert tour.method == method


class TestStrayKwargs:
    def test_benchmark_rejects_stray_kwargs(self, small_net, energy, radio):
        with pytest.raises(InvalidParameterError) as exc:
            plan_tour(small_net, energy, radio, method="benchmark",
                      K=4, polish=True)
        message = str(exc.value)
        assert "K" in message and "polish" in message

    def test_algorithm2_rejects_unknown_kwargs(self, small_net, energy,
                                               radio):
        with pytest.raises(TypeError):
            plan_tour(small_net, energy, radio, method="algorithm2",
                      warp_speed=True)

    def test_bad_engine_rejected_everywhere(self, small_net, energy, radio):
        for method in ("algorithm2", "algorithm3", "benchmark"):
            with pytest.raises(InvalidParameterError) as exc:
                plan_tour(small_net, energy, radio, method=method,
                          delta=25.0, engine="turbo")
            assert "turbo" in str(exc.value)


class TestEnginePassthrough:
    @pytest.mark.parametrize("method", ["algorithm2", "algorithm3",
                                        "benchmark"])
    @pytest.mark.parametrize("engine", list(ENGINES))
    def test_engine_reaches_tour_meta(self, small_net, energy, radio,
                                      method, engine):
        tour = plan_tour(small_net, energy, radio, method=method,
                         delta=25.0, engine=engine)
        assert tour.meta["engine"] == engine

    def test_engine_default_is_kernel(self, small_net, energy, radio):
        for method in ("algorithm2", "algorithm3", "benchmark"):
            tour = plan_tour(small_net, energy, radio, method=method,
                             delta=25.0)
            assert tour.meta["engine"] == "kernel"

    def test_engines_agree_through_the_facade(self, small_net, energy,
                                              radio):
        tours = [plan_tour(small_net, energy, radio, method="algorithm2",
                           delta=25.0, engine=e) for e in ENGINES]
        baseline = tours[0]
        for other in tours[1:]:
            assert other.collected_volume == pytest.approx(
                baseline.collected_volume)
            assert list(other.sojourns) == pytest.approx(
                list(baseline.sojourns))
