"""Unit tests for repro.tsp.construct."""

import numpy as np
import pytest

from repro.geometry.distance import pairwise_distances
from repro.tsp.construct import (
    best_insertion,
    cheapest_insertion_tour,
    insertion_delta,
    nearest_neighbor_tour,
)
from repro.tsp.length import tour_length_matrix, validate_tour
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def pts(rng):
    return rng.uniform(0, 100, (9, 2))


@pytest.fixture
def dist(pts):
    return pairwise_distances(pts)


class TestNearestNeighbor:
    def test_is_permutation(self, dist):
        tour = nearest_neighbor_tour(dist, start=0)
        validate_tour(tour, len(dist))
        assert len(tour) == len(dist)

    def test_starts_at_start(self, dist):
        assert nearest_neighbor_tour(dist, start=4)[0] == 4

    def test_single_node(self):
        tour = nearest_neighbor_tour(np.zeros((1, 1)))
        np.testing.assert_array_equal(tour, [0])

    def test_empty(self):
        assert len(nearest_neighbor_tour(np.zeros((0, 0)))) == 0

    def test_bad_start_rejected(self, dist):
        with pytest.raises(InvalidParameterError):
            nearest_neighbor_tour(dist, start=99)

    def test_greedy_step_property(self, dist):
        # The second node must be the nearest unvisited neighbour of start.
        tour = nearest_neighbor_tour(dist, start=0)
        row = dist[0].copy()
        row[0] = np.inf
        assert tour[1] == np.argmin(row)


class TestInsertionDelta:
    def test_empty_tour(self, dist):
        delta, pos = insertion_delta(np.empty(0, dtype=int), dist, 3)
        assert delta == 0.0

    def test_singleton_tour(self, dist):
        delta, pos = insertion_delta(np.array([0]), dist, 3)
        assert delta == pytest.approx(2 * dist[0, 3])

    def test_delta_matches_actual_length_change(self, dist):
        tour = np.array([0, 2, 5, 7])
        before = tour_length_matrix(tour, dist)
        delta, _ = insertion_delta(tour, dist, 4)
        after = tour_length_matrix(best_insertion(tour, dist, 4), dist)
        assert after - before == pytest.approx(delta)

    def test_delta_is_minimum_over_positions(self, dist):
        tour = np.array([0, 2, 5, 7])
        delta, _ = insertion_delta(tour, dist, 4)
        for pos in range(1, len(tour) + 1):
            cand = np.insert(tour, pos, 4)
            manual = (tour_length_matrix(cand, dist)
                      - tour_length_matrix(tour, dist))
            assert delta <= manual + 1e-9

    def test_metric_delta_non_negative(self, dist):
        # In a metric space an insertion can never shorten the tour.
        tour = np.array([0, 2, 5])
        delta, _ = insertion_delta(tour, dist, 1)
        assert delta >= -1e-9


class TestBestInsertion:
    def test_inserts_node(self, dist):
        out = best_insertion(np.array([0, 1]), dist, 5)
        assert 5 in out and len(out) == 3

    def test_into_empty(self, dist):
        np.testing.assert_array_equal(
            best_insertion(np.empty(0, dtype=int), dist, 5), [5])


class TestCheapestInsertionTour:
    def test_is_permutation(self, dist):
        tour = cheapest_insertion_tour(dist, start=0)
        validate_tour(tour, len(dist))
        assert len(tour) == len(dist)
        assert tour[0] == 0

    def test_subset_of_nodes(self, dist):
        tour = cheapest_insertion_tour(dist, start=0, nodes=[0, 3, 6])
        assert sorted(tour) == [0, 3, 6]

    def test_start_not_in_pool_rejected(self, dist):
        with pytest.raises(InvalidParameterError):
            cheapest_insertion_tour(dist, start=0, nodes=[1, 2])

    def test_duplicate_pool_rejected(self, dist):
        with pytest.raises(InvalidParameterError):
            cheapest_insertion_tour(dist, start=1, nodes=[1, 1, 2])

    def test_reasonable_quality(self, rng):
        # Cheapest insertion should beat a random permutation handily.
        pts = rng.uniform(0, 100, (15, 2))
        dist = pairwise_distances(pts)
        ci = tour_length_matrix(cheapest_insertion_tour(dist), dist)
        rand_tours = [rng.permutation(15) for _ in range(20)]
        rand_best = min(tour_length_matrix(t, dist) for t in rand_tours)
        assert ci <= rand_best
