"""Option-aware artifact-cache keys and the sweep-level reduction plumbing.

The regression pinned here (PR 9): any per-cell planner option listed in
:data:`repro.experiments.artifacts.ARTIFACT_OPTIONS` — starting with
``site_reduction`` — is part of every cache key, so two cells differing
only in reduction level can never share cached hovering sites, conflict
lists, or auxiliary graphs.  Also covers ``run_sweep(...,
site_reduction=)`` end to end: off-vs-safe row equality, worker-process
parity, batch columns, and the claims-harness delta checkers.
"""

import json

import numpy as np
import pytest

from repro.core.reduce import ReducedSites, resolve_reduction
from repro.experiments.artifacts import ARTIFACT_OPTIONS, ArtifactCache
from repro.experiments.claims import (
    check_reduction_claims,
    reduction_delta_table,
)
from repro.experiments.config import reduced_settings
from repro.experiments.fig5 import run_fig5
from repro.experiments.instances import make_instances
from repro.utils.errors import InvalidParameterError


@pytest.fixture(scope="module")
def tiny_config():
    # The 8 kJ column makes the unreachable stage actually drop sites
    # (out-and-back bound 400 m), so the reduce counters are non-trivial.
    return reduced_settings().scaled(
        n_nodes=22, n_instances=2,
        capacity_sweep=(8e3, 3e4),
        delta=25.0, k_values=(2,), seed=11)


@pytest.fixture(scope="module")
def cache_setup(tiny_config):
    net = make_instances(tiny_config)[0]
    return net, tiny_config.radio_model(), tiny_config.energy_model()


def nontime_rows(result):
    rows = []
    for row in result.rows:
        d = row.as_dict()
        del d["mean_time_s"], d["std_time_s"]
        rows.append(d)
    return rows


class TestOptionAwareKeys:
    def test_site_reduction_registered(self):
        assert "site_reduction" in ARTIFACT_OPTIONS

    def test_reduction_levels_never_share_sites(self, cache_setup):
        """The PR 9 regression: distinct levels, distinct artifacts."""
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        outs = {}
        for level in (None, "safe", "aggressive"):
            kwargs = {"delta": 25.0}
            if level is not None:
                kwargs["site_reduction"] = level
            outs[level] = cache.augment_kwargs(net, energy, radio,
                                               "algorithm2", kwargs)
        sites = [outs[lvl]["sites"] for lvl in (None, "safe", "aggressive")]
        assert len({id(s) for s in sites}) == 3
        assert not isinstance(outs[None]["sites"], ReducedSites)
        assert isinstance(outs["safe"]["sites"], ReducedSites)
        assert outs["safe"]["sites"].reduction.level == "safe"

    def test_reduction_levels_never_share_alg1_artifacts(self, cache_setup):
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        plain = cache.augment_kwargs(net, energy, radio, "algorithm1",
                                     {"delta": 25.0})
        red = cache.augment_kwargs(net, energy, radio, "algorithm1",
                                   {"delta": 25.0,
                                    "site_reduction": "safe"})
        assert plain["sites"] is not red["sites"]
        assert plain["graph"] is not red["graph"]
        assert plain["conflict_neighbors"] is not red["conflict_neighbors"]
        # The reduced graph is built over the reduced sites, so the
        # planner's sites-match guard accepts the pair.
        assert red["graph"].sites is red["sites"]
        assert len(red["conflict_neighbors"]) == red["sites"].n_sites + 1

    def test_reduced_sites_memoized(self, cache_setup):
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        reduction = resolve_reduction("safe")
        first = cache.reduced_sites(net, radio, 25.0, reduction, energy)
        assert cache.reduced_sites(net, radio, 25.0, reduction,
                                   energy) is first
        # One miss for the base sites, one for the reduction, then a hit.
        assert cache.stats() == {"hits": 1, "misses": 2, "artifacts": 2}

    def test_capacity_in_key_only_when_dependent(self, cache_setup):
        net, radio, _ = cache_setup
        cfg = reduced_settings()
        cache = ArtifactCache()
        safe = resolve_reduction("safe")        # unreachable => capacity
        low = cache.reduced_sites(net, radio, 25.0, safe,
                                  cfg.energy_model(capacity=4e3))
        high = cache.reduced_sites(net, radio, 25.0, safe,
                                   cfg.energy_model(capacity=9e5))
        assert low is not high
        no_cap = resolve_reduction(
            {"level": "z", "zero_award": True})     # capacity-independent
        a = cache.reduced_sites(net, radio, 25.0, no_cap,
                                cfg.energy_model(capacity=4e3))
        b = cache.reduced_sites(net, radio, 25.0, no_cap,
                                cfg.energy_model(capacity=9e5))
        assert a is b

    def test_augmented_kwargs_match_uncached_plan(self, cache_setup):
        from repro.core.algorithm2 import plan_algorithm2
        net, radio, energy = cache_setup
        cache = ArtifactCache()
        out = cache.augment_kwargs(net, energy, radio, "algorithm2",
                                   {"delta": 25.0,
                                    "site_reduction": "safe"})
        cached = plan_algorithm2(net, energy, radio, **out)
        direct = plan_algorithm2(net, energy, radio, delta=25.0,
                                 site_reduction="safe")
        assert np.array_equal(cached.points, direct.points)
        assert np.array_equal(cached.collected, direct.collected)


class TestSweepReduction:
    @pytest.fixture(scope="class")
    def base(self, tiny_config):
        return run_fig5(tiny_config, jobs=1)

    @pytest.fixture(scope="class")
    def safe(self, tiny_config):
        return run_fig5(tiny_config, jobs=1, site_reduction="safe")

    def test_safe_rows_match_off(self, base, safe):
        assert nontime_rows(base) == nontime_rows(safe)

    def test_safe_rows_carry_reduce_counters(self, base, safe):
        perf = safe.rows[0].perf
        assert perf["reduce.sites_in"] > perf["reduce.sites_out"]
        assert all(k for k in perf if k.startswith("reduce."))
        assert not any(k.startswith("reduce.") for k in base.rows[0].perf)

    def test_jobs2_matches_sequential(self, tiny_config, safe):
        par = run_fig5(tiny_config, jobs=2, site_reduction="safe")
        assert [r.deterministic_dict() for r in safe.rows] == \
            [r.deterministic_dict() for r in par.rows]

    def test_batch_columns_match_per_cell(self, tiny_config, safe):
        col = run_fig5(tiny_config, jobs=1, batch_columns=True,
                       site_reduction="safe")
        assert nontime_rows(safe) == nontime_rows(col)

    def test_transport_is_json_safe(self, tiny_config):
        # The injected kwarg must survive the worker-boundary JSON dump.
        reduction = resolve_reduction("aggressive")
        json.dumps({"site_reduction": reduction.transport()})

    def test_benchmark_cells_untouched(self, base, tiny_config):
        agg = run_fig5(tiny_config, jobs=1, site_reduction="aggressive")
        for b, a in zip(base.rows, agg.rows):
            if b.algorithm == "Benchmark":
                assert b.mean_volume_gb == a.mean_volume_gb

    def test_claims_checkers(self, base, safe, tiny_config):
        r1 = check_reduction_claims(base, safe, level="safe")
        assert r1[0].claim_id == "R1" and r1[0].passed
        agg = run_fig5(tiny_config, jobs=1, site_reduction="aggressive")
        r2 = check_reduction_claims(base, agg, level="aggressive",
                                    max_loss=0.25)
        assert r2[0].claim_id == "R2" and r2[0].passed
        table = reduction_delta_table(base, agg)
        assert table.count("\n") == len(base.algorithms()) + 1
        assert "Benchmark | +0.00%" in table

    def test_claims_reject_mismatched_sweeps(self, base, tiny_config):
        other = run_fig5(tiny_config.scaled(capacity_sweep=(2e4,)), jobs=1)
        with pytest.raises(InvalidParameterError):
            check_reduction_claims(base, other, level="safe")
        with pytest.raises(InvalidParameterError):
            check_reduction_claims(base, base, level="extreme")
