"""Unit tests for repro.core.auxgraph (G_s construction, Lemma 1)."""

import itertools

import numpy as np
import pytest

from repro.core.auxgraph import build_auxiliary_graph
from repro.core.hovering import build_hovering_sites
from repro.utils.errors import InvalidParameterError


@pytest.fixture
def graph(small_net, radio, energy):
    sites = build_hovering_sites(small_net, radio, delta=30.0)
    return build_auxiliary_graph(sites, energy)


class TestStructure:
    def test_depot_is_node_zero(self, graph, small_net):
        np.testing.assert_allclose(graph.points[0], small_net.depot)
        assert graph.awards[0] == 0.0
        assert graph.hover_energies[0] == 0.0

    def test_node_count(self, graph):
        assert graph.n_nodes == graph.sites.n_sites + 1

    def test_costs_symmetric_zero_diagonal(self, graph):
        np.testing.assert_allclose(graph.costs, graph.costs.T)
        np.testing.assert_allclose(np.diag(graph.costs), 0.0)

    def test_w1_is_hover_time_times_power(self, graph, energy):
        np.testing.assert_allclose(
            graph.hover_energies, graph.hover_times * energy.hover_power)

    def test_edge_weight_formula(self, graph, energy):
        # Eq. 9 spot check on a few random pairs.
        rng = np.random.default_rng(0)
        n = graph.n_nodes
        for _ in range(10):
            i, j = rng.choice(n, 2, replace=False)
            dist = np.linalg.norm(graph.points[i] - graph.points[j])
            expected = (0.5 * (graph.hover_energies[i] + graph.hover_energies[j])
                        + dist * energy.travel_cost_per_meter)
            assert graph.costs[i, j] == pytest.approx(expected)

    def test_rejects_non_energy_model(self, small_net, radio):
        sites = build_hovering_sites(small_net, radio, delta=30.0)
        with pytest.raises(InvalidParameterError):
            build_auxiliary_graph(sites, "not a model")


class TestMetricity:
    def test_lemma1_exhaustive_small(self, tiny_net, radio, energy):
        sites = build_hovering_sites(tiny_net, radio, delta=40.0)
        graph = build_auxiliary_graph(sites, energy)
        c = graph.costs
        n = graph.n_nodes
        for i, j, k in itertools.permutations(range(n), 3):
            assert c[i, k] <= c[i, j] + c[j, k] + 1e-9

    def test_verify_metric_sampled(self, graph):
        assert graph.verify_metric(n_samples=500)

    def test_verify_metric_detects_violation(self, graph):
        # Corrupt one edge far below the metric floor.
        broken = graph
        broken.costs[1, 2] = broken.costs[2, 1] = (
            broken.costs[1, 0] + broken.costs[0, 2]) * 10 + 100.0
        # (1,2) is now way too long: triangle through 0 is shorter, which is
        # fine; instead make an edge absurdly *cheap* elsewhere to violate.
        broken.costs[3, 4] = broken.costs[4, 3] = 0.0
        broken.costs[3, 5] = broken.costs[5, 3] = 1e9
        broken.costs[4, 5] = broken.costs[5, 4] = 0.0
        assert not broken.verify_metric(n_samples=5000)


class TestTourEnergy:
    def test_closed_tour_energy_decomposition(self, graph, energy):
        # Sum of w2 edges along a closed tour = total hover + travel energy.
        tour = np.array([0, 3, 1, 5])
        edge_sum = graph.tour_energy(tour)
        hover = graph.hover_energies[tour].sum()
        travel = 0.0
        for a, b in zip(tour, np.roll(tour, -1)):
            travel += np.linalg.norm(graph.points[a] - graph.points[b])
        expected = hover + travel * energy.travel_cost_per_meter
        assert edge_sum == pytest.approx(expected)

    def test_trivial_tours_zero(self, graph):
        assert graph.tour_energy([0]) == 0.0
        assert graph.tour_energy([]) == 0.0
