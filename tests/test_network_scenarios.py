"""Unit tests for repro.network.scenarios."""

import numpy as np
import pytest

from repro.network.scenarios import (
    SCENARIOS,
    corridor,
    dense_urban,
    hotspot,
    make_scenario,
    ring,
    sparse_rural,
)
from repro.utils.errors import InvalidParameterError


class TestRegistry:
    def test_registry_complete(self):
        assert set(SCENARIOS) == {"sparse_rural", "dense_urban", "corridor",
                                  "hotspot", "ring"}

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_factory_produces_valid_network(self, name):
        net = make_scenario(name, seed=1)
        assert net.n_nodes > 0
        assert net.region.contains(net.positions).all()
        assert (net.volumes > 0).all()

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_deterministic(self, name):
        a = make_scenario(name, seed=3)
        b = make_scenario(name, seed=3)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_unknown_rejected(self):
        with pytest.raises(InvalidParameterError):
            make_scenario("atlantis")


class TestShapes:
    def test_sparse_rural_is_sparse(self):
        net = sparse_rural(40, seed=0)
        # Large region, few nodes: mean nearest-neighbour distance > 100 m.
        from scipy.spatial import cKDTree
        d, _ = cKDTree(net.positions).query(net.positions, k=2)
        assert d[:, 1].mean() > 100.0

    def test_dense_urban_is_dense(self):
        net = dense_urban(200, seed=0)
        from scipy.spatial import cKDTree
        d, _ = cKDTree(net.positions).query(net.positions, k=2)
        assert d[:, 1].mean() < 40.0

    def test_corridor_geometry(self):
        net = corridor(50, length=3000.0, width=100.0, seed=0)
        assert net.positions[:, 0].max() <= 3000.0
        assert net.positions[:, 1].max() <= 100.0
        # Depot at the west end.
        assert net.depot[0] == 0.0

    def test_hotspot_concentration(self):
        net = hotspot(100, hotspot_fraction=0.7, seed=0)
        center = np.array([250.0, 250.0])
        d = np.linalg.norm(net.positions - center, axis=1)
        assert (d < 150.0).sum() >= 60  # most of the 70 cluster nodes

    def test_hotspot_fraction_validated(self):
        with pytest.raises(InvalidParameterError):
            hotspot(10, hotspot_fraction=1.5)

    def test_ring_radii(self):
        net = ring(60, radius=400.0, jitter=10.0, seed=0)
        d = np.linalg.norm(net.positions - net.depot, axis=1)
        assert abs(d.mean() - 400.0) < 30.0
        assert d.std() < 40.0

    def test_scenarios_plannable(self, radio, energy):
        # Every scenario must be consumable by the planners end to end.
        from repro.core.planner import plan_tour
        from repro.core.tour import validate_tour_feasibility
        for name in SCENARIOS:
            net = make_scenario(name, seed=2)
            small = net.subset(range(min(net.n_nodes, 15)))
            tour = plan_tour(small, energy, radio, method="algorithm2",
                             delta=30.0)
            assert validate_tour_feasibility(tour, radio=radio).feasible
