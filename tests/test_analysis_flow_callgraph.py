"""Unit tests for the flow layer's call-graph construction."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import Project
from repro.analysis.flow.callgraph import (
    QSEP,
    build_call_graph,
    short_name,
)


def write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)


def graph_for(tmp_path, files):
    for rel, text in files.items():
        write(tmp_path / rel, text)
    project = Project.load(tmp_path, [Path("src")])
    return build_call_graph(project)


TWO_MODULES = {
    "src/repro/pkg/util.py": (
        "import time\n"
        "__all__ = ['stamp']\n"
        "def stamp() -> float:\n"
        "    return time.perf_counter()\n"
    ),
    "src/repro/pkg/core.py": (
        "from repro.pkg.util import stamp\n"
        "__all__ = ['Engine', 'run']\n"
        "class Engine:\n"
        "    def step(self) -> float:\n"
        "        return self.helper()\n"
        "    def helper(self) -> float:\n"
        "        return stamp()\n"
        "def run() -> float:\n"
        "    eng = Engine()\n"
        "    return eng.step()\n"
    ),
}


class TestBuild:
    def test_functions_and_methods_are_registered(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        qnames = set(graph.functions)
        assert "repro.pkg.util:stamp" in qnames
        assert "repro.pkg.core:Engine.step" in qnames
        assert "repro.pkg.core:Engine.helper" in qnames
        assert "repro.pkg.core:run" in qnames

    def test_cross_module_from_import_edge_resolves(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        edges = graph.callees("repro.pkg.core:Engine.helper")
        assert any(e.callee == "repro.pkg.util:stamp" and not e.external
                   for e in edges)

    def test_self_method_call_resolves(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        edges = graph.callees("repro.pkg.core:Engine.step")
        assert any(e.callee == "repro.pkg.core:Engine.helper"
                   and not e.external for e in edges)

    def test_local_typed_var_method_call_resolves(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        edges = graph.callees("repro.pkg.core:run")
        assert any(e.callee == "repro.pkg.core:Engine.step"
                   and not e.external for e in edges)

    def test_external_call_keeps_dotted_chain(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        edges = graph.callees("repro.pkg.util:stamp")
        assert any(e.callee == "time.perf_counter" and e.external
                   for e in edges)

    def test_reachability_walks_cross_module(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        seen = graph.reachable_from(["repro.pkg.core:run"])
        assert "repro.pkg.util:stamp" in seen
        assert "repro.pkg.core:Engine.helper" in seen


class TestExport:
    def test_json_shape_is_versioned_and_sorted(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        payload = graph.to_json_dict()
        assert payload["version"] == 1
        qnames = [f["qname"] for f in payload["functions"]]
        assert qnames == sorted(qnames)
        assert all({"caller", "callee", "line", "external"} <= set(e)
                   for e in payload["edges"])
        json.dumps(payload)  # must be serialisable as-is

    def test_dot_export_is_a_digraph(self, tmp_path):
        graph = graph_for(tmp_path, TWO_MODULES)
        dot = graph.to_dot()
        assert dot.startswith("digraph")
        assert "repro.pkg.util:stamp" in dot


class TestShortName:
    def test_strips_module_qualifier_and_class_path(self):
        assert short_name("repro.experiments.runner:SweepRow") == "SweepRow"
        assert short_name("repro.obs.tracer:span") == "span"
        assert short_name(f"repro.core.kernel{QSEP}PlannerKernel.perf") \
            == "perf"

    def test_external_dotted_names(self):
        assert short_name("concurrent.futures.as_completed") == "as_completed"
        assert short_name("span") == "span"
