"""CLI surface of the flow analysis: ``--flow``, ``--callgraph-out``,
``--stats``, the ``rules`` listing, and the pinned JSON report schema."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main
from repro.analysis.engine import Finding, render_json

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE = REPO_ROOT / "tests" / "flow_fixtures" / "determinism"
GOLDEN = REPO_ROOT / "tests" / "golden" / "flow_determinism_report.json"


class TestFlowFlag:
    def test_flow_findings_fail_the_fixture(self, capsys):
        rc = main(["check", "src", "--root", str(FIXTURE), "--flow"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "flow-determinism" in out

    def test_without_flow_the_fixture_is_clean(self, capsys):
        rc = main(["check", "src", "--root", str(FIXTURE)])
        assert rc == 0
        assert "OK: 0 findings" in capsys.readouterr().out

    def test_leading_option_implies_check(self, capsys):
        # `python -m repro.analysis --flow` == `check --flow` (with the
        # default src path resolved against --root).
        rc = main(["--flow", "--root", str(FIXTURE)])
        assert rc == 1
        assert "flow-determinism" in capsys.readouterr().out


class TestGoldenJsonReport:
    def test_report_matches_golden_file(self, capsys):
        rc = main(["check", "src", "--root", str(FIXTURE), "--flow",
                   "--format", "json"])
        assert rc == 1
        assert json.loads(capsys.readouterr().out) \
            == json.loads(GOLDEN.read_text())

    def test_schema_fields_are_pinned(self):
        payload = json.loads(GOLDEN.read_text())
        assert payload["version"] == 1
        assert set(payload) == {"version", "checked_files", "baselined",
                                "findings"}
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "severity",
                                    "message", "hint"}

    def test_json_orders_errors_before_warnings(self):
        findings = [
            Finding(rule="b", path="a.py", line=1, message="later",
                    severity="warning"),
            Finding(rule="a", path="z.py", line=9, message="first",
                    severity="error"),
        ]
        payload = json.loads(render_json(findings, checked=2))
        assert [f["severity"] for f in payload["findings"]] \
            == ["error", "warning"]


class TestCallgraphExport:
    def test_json_export(self, tmp_path, capsys):
        out = tmp_path / "graph.json"
        main(["check", "src", "--root", str(FIXTURE), "--flow",
              "--callgraph-out", str(out)])
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["version"] == 1
        qnames = {f["qname"] for f in payload["functions"]}
        assert "repro.flowfix.clock:jitter" in qnames
        assert any(e["callee"] == "repro.flowfix.clock:jitter"
                   for e in payload["edges"])

    def test_dot_export(self, tmp_path, capsys):
        out = tmp_path / "graph.dot"
        main(["check", "src", "--root", str(FIXTURE),
              "--callgraph-out", str(out)])
        capsys.readouterr()
        assert out.read_text().startswith("digraph")


class TestStats:
    def test_summary_line_shape(self, capsys):
        rc = main(["check", "src", "--root", str(FIXTURE), "--flow",
                   "--stats"])
        assert rc == 1
        lines = capsys.readouterr().out.strip().splitlines()
        stats = lines[-1]
        assert stats.startswith("stats: files=2 functions=")
        assert "edges=" in stats
        assert "findings=2" in stats
        assert "[flow-determinism=2]" in stats

    def test_clean_run_reports_zero_findings(self, capsys):
        rc = main(["check", "src", "--root", str(FIXTURE), "--stats"])
        assert rc == 0
        stats = capsys.readouterr().out.strip().splitlines()[-1]
        assert "findings=0" in stats
        assert "[" not in stats


class TestRulesListing:
    def test_flow_rules_are_listed_and_tagged(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("flow-determinism", "flow-transport", "flow-parity"):
            assert rule_id in out
        assert "[flow]" in out
