"""Unit tests for repro.network.device."""

import numpy as np
import pytest

from repro.network.device import AggregateNode, IoTDevice
from repro.utils.errors import InvalidParameterError


class TestIoTDevice:
    def test_construction(self):
        d = IoTDevice(device_id=1, x=2.0, y=3.0, data_volume=10.0)
        assert d.device_id == 1 and d.data_volume == 10.0

    def test_position_array(self):
        d = IoTDevice(device_id=0, x=1.5, y=-2.5)
        np.testing.assert_array_equal(d.position, [1.5, -2.5])

    def test_default_unassigned(self):
        assert IoTDevice(device_id=0, x=0, y=0).assigned_aggregate is None

    def test_rejects_negative_volume(self):
        with pytest.raises(InvalidParameterError):
            IoTDevice(device_id=0, x=0, y=0, data_volume=-1.0)

    def test_rejects_nan_coordinates(self):
        with pytest.raises(InvalidParameterError):
            IoTDevice(device_id=0, x=float("nan"), y=0)


class TestAggregateNode:
    def test_total_volume_sums_own_and_forwarded(self):
        node = AggregateNode(node_id=0, x=0, y=0,
                             own_volume=100.0, forwarded_volume=40.0)
        assert node.data_volume == 140.0

    def test_defaults_zero(self):
        node = AggregateNode(node_id=0, x=0, y=0)
        assert node.data_volume == 0.0

    def test_position(self):
        node = AggregateNode(node_id=2, x=5.0, y=6.0)
        np.testing.assert_array_equal(node.position, [5.0, 6.0])

    def test_rejects_negative_forwarded(self):
        with pytest.raises(InvalidParameterError):
            AggregateNode(node_id=0, x=0, y=0, forwarded_volume=-0.5)
