"""Unit tests for the experiment harness (config, runner, figures, CLI)."""

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig, paper_settings, reduced_settings
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.instances import make_instances
from repro.experiments.runner import AlgoSpec, _flatten_perf, run_sweep
from repro.experiments.tables import rows_to_csv, rows_to_markdown
from repro.utils.errors import InvalidParameterError


@pytest.fixture(scope="module")
def tiny_config():
    """A config small enough for figure runners inside unit tests."""
    return reduced_settings().scaled(
        n_nodes=25, n_instances=2,
        capacity_sweep=(1.5e4, 3e4),
        delta_sweep=(25.0, 40.0),
        delta=25.0, k_values=(2,), seed=7)


class TestConfig:
    def test_paper_preset_matches_section_7a(self):
        cfg = paper_settings()
        assert cfg.n_nodes == 500
        assert cfg.region_side == 1000.0
        assert cfg.volume_range == (100.0, 1000.0)
        assert cfg.bandwidth == 150.0
        assert cfg.coverage_radius == 50.0
        assert cfg.capacity == 3e5
        assert cfg.n_instances == 15

    def test_reduced_preset_smaller(self):
        assert reduced_settings().n_nodes < paper_settings().n_nodes

    def test_energy_model_sweep_override(self):
        cfg = reduced_settings()
        assert cfg.energy_model(capacity=123.0).capacity == 123.0
        assert cfg.energy_model().capacity == cfg.capacity

    def test_radio_model_r0(self):
        assert reduced_settings().radio_model().coverage_radius == 50.0

    def test_scaled_copy(self):
        cfg = reduced_settings().scaled(n_nodes=10)
        assert cfg.n_nodes == 10
        assert reduced_settings().n_nodes != 10

    def test_rejects_empty_sweep(self):
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(capacity_sweep=())

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            ExperimentConfig(k_values=(0,))


class TestInstances:
    def test_count(self, tiny_config):
        assert len(make_instances(tiny_config)) == 2

    def test_override(self, tiny_config):
        assert len(make_instances(tiny_config, n_instances=4)) == 4

    def test_deterministic(self, tiny_config):
        a = make_instances(tiny_config)
        b = make_instances(tiny_config)
        np.testing.assert_array_equal(a[0].positions, b[0].positions)

    def test_instances_differ(self, tiny_config):
        a = make_instances(tiny_config)
        assert not np.array_equal(a[0].positions, a[1].positions)


class TestRunner:
    def test_basic_sweep(self, tiny_config):
        instances = make_instances(tiny_config)
        result = run_sweep(
            tiny_config, instances,
            [AlgoSpec("Benchmark", "benchmark", {})],
            param_name="capacity", param_values=(1.5e4, 3e4),
            make_energy=lambda cfg, v: cfg.energy_model(capacity=v),
            make_kwargs=lambda cfg, v, s: dict(s.kwargs))
        assert len(result.rows) == 2
        assert all(r.n_instances == 2 for r in result.rows)
        series = result.series("Benchmark")
        # More energy -> at least as much data.
        assert series[1].mean_volume_gb >= series[0].mean_volume_gb - 1e-9

    def test_progress_callback(self, tiny_config):
        lines = []
        instances = make_instances(tiny_config)
        run_sweep(tiny_config, instances,
                  [AlgoSpec("Benchmark", "benchmark", {})],
                  param_name="capacity", param_values=(1.5e4,),
                  make_energy=lambda cfg, v: cfg.energy_model(capacity=v),
                  make_kwargs=lambda cfg, v, s: dict(s.kwargs),
                  progress=lines.append)
        assert len(lines) == 1
        assert lines[0].startswith("[1/1] capacity=15000 Benchmark:")

    def test_progress_counter_counts_all_cells(self, tiny_config):
        lines = []
        instances = make_instances(tiny_config)
        run_sweep(tiny_config, instances,
                  [AlgoSpec("Benchmark", "benchmark", {}),
                   AlgoSpec("Bench 2", "benchmark", {})],
                  param_name="capacity", param_values=(1.5e4, 3e4),
                  make_energy=lambda cfg, v: cfg.energy_model(capacity=v),
                  make_kwargs=lambda cfg, v, s: dict(s.kwargs),
                  progress=lines.append)
        assert [line.split()[0] for line in lines] == \
            ["[1/4]", "[2/4]", "[3/4]", "[4/4]"]

    def test_std_is_population_ddof0(self, tiny_config):
        # The paper reports dispersion over the full instance population,
        # so the runner must use np.std(..., ddof=0) — pin it against an
        # accidental switch to the sample estimator.
        instances = make_instances(tiny_config)
        result = run_sweep(
            tiny_config, instances,
            [AlgoSpec("Benchmark", "benchmark", {})],
            param_name="capacity", param_values=(1.5e4,),
            make_energy=lambda cfg, v: cfg.energy_model(capacity=v),
            make_kwargs=lambda cfg, v, s: dict(s.kwargs), cache=False)
        radio = tiny_config.radio_model()
        energy = tiny_config.energy_model(capacity=1.5e4)
        from repro.core.planner import plan_tour
        from repro.experiments.runner import MB_PER_GB
        volumes = [plan_tour(net, energy, radio,
                             method="benchmark").collected_volume / MB_PER_GB
                   for net in instances]
        row = result.rows[0]
        assert row.std_volume_gb == float(np.std(volumes, ddof=0))
        assert row.std_volume_gb != float(np.std(volumes, ddof=1))

    def test_single_instance_std_exactly_zero(self, tiny_config):
        instances = make_instances(tiny_config)[:1]
        result = run_sweep(
            tiny_config, instances,
            [AlgoSpec("Benchmark", "benchmark", {})],
            param_name="capacity", param_values=(1.5e4,),
            make_energy=lambda cfg, v: cfg.energy_model(capacity=v),
            make_kwargs=lambda cfg, v, s: dict(s.kwargs))
        row = result.rows[0]
        assert row.n_instances == 1
        assert row.std_volume_gb == 0.0
        assert row.std_time_s == 0.0

    def test_perf_aggregation_includes_nested_timers(self, tiny_config):
        # The kernel's perf dict nests {"seconds": {...}}; the runner must
        # flatten it into dotted keys instead of silently dropping it.
        instances = make_instances(tiny_config)
        result = run_sweep(
            tiny_config, instances,
            [AlgoSpec("Alg2", "algorithm2", {"delta": 40.0})],
            param_name="capacity", param_values=(1.5e4,),
            make_energy=lambda cfg, v: cfg.energy_model(capacity=v),
            make_kwargs=lambda cfg, v, s: dict(s.kwargs))
        perf = result.rows[0].perf
        assert perf is not None
        assert perf["engine"] == "kernel"
        assert perf["sites_rescored"] > 0
        for key in ("seconds.rescore", "seconds.insertion",
                    "seconds.partial"):
            assert key in perf and perf[key] >= 0.0


class TestFlattenPerf:
    def test_nested_dicts_become_dotted_keys(self):
        flat = _flatten_perf({
            "sites_rescored": 3,
            "seconds": {"rescore": 0.25, "deep": {"leaf": 1}},
        })
        assert flat == {"sites_rescored": 3.0, "seconds.rescore": 0.25,
                        "seconds.deep.leaf": 1.0}

    def test_non_numeric_leaves_skipped(self):
        assert _flatten_perf({"engine": "kernel", "polished": True,
                              "n": 2}) == {"n": 2.0}

    def test_empty(self):
        assert _flatten_perf({}) == {}


class TestFigureRunners:
    def test_fig3_shapes(self, tiny_config):
        result = run_fig3(tiny_config, n_restarts=1)
        algos = result.algorithms()
        assert "Algorithm 1" in algos and "Benchmark" in algos
        a1 = result.series("Algorithm 1")
        bench = result.series("Benchmark")
        # Headline: Algorithm 1 dominates the benchmark at every point.
        for r1, rb in zip(a1, bench):
            assert r1.mean_volume_gb >= rb.mean_volume_gb - 1e-9

    def test_fig4_shapes(self, tiny_config):
        result = run_fig4(tiny_config)
        assert "Algorithm 2" in result.algorithms()
        assert "Algorithm 3 (K=2)" in result.algorithms()
        a2 = result.series("Algorithm 2")
        bench = result.series("Benchmark")
        for r2, rb in zip(a2, bench):
            assert r2.mean_volume_gb >= rb.mean_volume_gb - 1e-9
        # Benchmark ignores delta: identical value at every delta.
        vols = [r.mean_volume_gb for r in bench]
        assert max(vols) - min(vols) < 1e-9

    def test_fig5_shapes(self, tiny_config):
        result = run_fig5(tiny_config)
        a2 = result.series("Algorithm 2")
        # Volume grows with capacity.
        assert a2[-1].mean_volume_gb >= a2[0].mean_volume_gb - 1e-9


class TestTables:
    @pytest.fixture(scope="class")
    def result(self, tiny_config):
        return run_fig5(tiny_config)

    def test_csv_round_trips_all_rows(self, result):
        text = rows_to_csv(result)
        lines = text.strip().splitlines()
        assert len(lines) == len(result.rows) + 1  # header
        assert lines[0].startswith("param_name,")

    def test_markdown_contains_both_panels(self, result):
        text = rows_to_markdown(result, title="Fig. 5")
        assert "(a) Collected data volume" in text
        assert "(b) Planning time" in text
        assert "Fig. 5" in text
        assert "Algorithm 2" in text


class TestCli:
    def test_cli_runs_fig5(self, capsys, tmp_path):
        from repro.experiments.cli import main
        rc = main(["fig5", "--scale", "reduced", "--nodes", "20",
                   "--instances", "1", "--quiet", "--out", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Collected data volume" in out
        assert (tmp_path / "fig5_reduced.csv").exists()

    def test_cli_rejects_unknown_figure(self):
        from repro.experiments.cli import main
        with pytest.raises(SystemExit):
            main(["fig9"])
