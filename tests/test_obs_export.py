"""Tests for repro.obs.export: JSONL round-trips and Chrome trace schema."""

from __future__ import annotations

import io
import json

from repro.obs.export import (
    TRACE_CATEGORY,
    TRACE_PID,
    TRACE_TID,
    read_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import Tracer


def nested_trace() -> Tracer:
    """Three-level span tree with attributes, as a real planner produces."""
    tracer = Tracer()
    with tracer.span("planner.plan_tour", method="algorithm2", n_nodes=20):
        with tracer.span("alg2.round"):
            with tracer.span("kernel.rescore"):
                pass
            with tracer.span("kernel.insertion"):
                pass
        with tracer.span("alg2.polish"):
            pass
    return tracer


class TestJsonl:
    def test_round_trip_path(self, tmp_path):
        tracer = nested_trace()
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(tracer.records(), path)
        assert n == 5
        assert read_jsonl(path) == tracer.records()

    def test_round_trip_stream(self):
        tracer = nested_trace()
        buf = io.StringIO()
        write_jsonl(tracer.records(), buf)
        assert read_jsonl(io.StringIO(buf.getvalue())) == tracer.records()

    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(nested_trace().records(), path)
        lines = path.read_text().splitlines()
        assert len(lines) == 5
        for line in lines:
            json.loads(line)

    def test_blank_lines_ignored_on_read(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"name": "a.b", "dur_s": 0.0}\n\n\n')
        assert len(read_jsonl(path)) == 1


class TestChromeTrace:
    def test_event_schema(self):
        """Satellite check: ph/ts/dur/pid/tid on every exported span."""
        tracer = nested_trace()
        payload = to_chrome_trace(tracer.records())
        assert payload["displayTimeUnit"] == "ms"
        meta, *events = payload["traceEvents"]
        assert meta["ph"] == "M" and meta["name"] == "process_name"
        assert len(events) == 5
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == TRACE_CATEGORY
            assert event["pid"] == TRACE_PID
            assert event["tid"] == TRACE_TID
            assert isinstance(event["ts"], float) and event["ts"] >= 0.0
            assert isinstance(event["dur"], float) and event["dur"] >= 0.0
            assert "span_id" in event["args"]

    def test_nested_tree_round_trips_through_args(self):
        """The span hierarchy survives conversion via args.parent_id."""
        tracer = nested_trace()
        records = tracer.records()
        payload = to_chrome_trace(records)
        events = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_id = {e["args"]["span_id"]: e for e in events}
        for rec in records:
            event = by_id[rec["id"]]
            assert event["name"] == rec["name"]
            assert event["args"].get("parent_id") == (
                rec["parent"] if rec["parent"] is not None else None)
        # Rebuild parent names through the export and compare to the truth.
        child_to_parent = {
            e["name"]: by_id[e["args"]["parent_id"]]["name"]
            for e in events if "parent_id" in e["args"]}
        assert child_to_parent == {
            "alg2.round": "planner.plan_tour",
            "alg2.polish": "planner.plan_tour",
            "kernel.rescore": "alg2.round",
            "kernel.insertion": "alg2.round",
        }

    def test_attrs_carried_in_args(self):
        tracer = nested_trace()
        payload = to_chrome_trace(tracer.records())
        root = next(e for e in payload["traceEvents"]
                    if e.get("name") == "planner.plan_tour")
        assert root["args"]["method"] == "algorithm2"
        assert root["args"]["n_nodes"] == 20

    def test_timestamps_are_microseconds(self):
        tracer = Tracer()
        with tracer.span("mod.op"):
            pass
        (rec,) = tracer.records()
        payload = to_chrome_trace([rec])
        event = payload["traceEvents"][-1]
        assert event["ts"] == round(rec["ts_s"] * 1e6, 3)
        assert event["dur"] == round(rec["dur_s"] * 1e6, 3)

    def test_write_chrome_trace_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(nested_trace().records(), path)
        assert n == 6  # 5 spans + 1 metadata event
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 6
