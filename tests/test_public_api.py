"""Public-API stability: everything in __all__ exists and is importable.

A downstream user pins against ``from repro import X``; this test freezes
the contract so an accidental rename shows up as a test failure, not a
user bug report.
"""

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.geometry",
    "repro.network",
    "repro.energy",
    "repro.radio",
    "repro.tsp",
    "repro.orienteering",
    "repro.core",
    "repro.sim",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_entries_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


def test_top_level_planning_surface():
    import repro
    for name in ("plan_tour", "plan_algorithm1", "plan_algorithm2",
                 "plan_algorithm3", "plan_benchmark", "plan_fleet",
                 "CollectionTour", "validate_tour_feasibility",
                 "simulate_mission", "cross_validate",
                 "collection_upper_bound"):
        assert callable(getattr(repro, name)) or isinstance(
            getattr(repro, name), type), name


def test_paper_presets_exported():
    import repro
    assert repro.PAPER_ENERGY_MODEL.capacity == 3e5
    assert repro.PAPER_RADIO_MODEL.bandwidth == 150.0
    from repro.energy import PAPER_LITERAL_ENERGY_MODEL
    assert PAPER_LITERAL_ENERGY_MODEL.distance_based_travel


def test_error_types_exported():
    import repro
    assert issubclass(repro.InfeasibleTourError, repro.ReproError)
    assert issubclass(repro.InvalidParameterError, repro.ReproError)


def test_version_is_semver():
    import repro
    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)


def test_docstrings_on_public_planners():
    # Deliverable (e): doc comments on every public item — spot-check the
    # planning surface.
    import repro
    for name in ("plan_tour", "plan_algorithm1", "plan_algorithm2",
                 "plan_algorithm3", "plan_benchmark", "simulate_mission",
                 "cross_validate", "validate_tour_feasibility"):
        obj = getattr(repro, name)
        assert obj.__doc__ and len(obj.__doc__) > 40, name
